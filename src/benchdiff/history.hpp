// The performance-history dataset behind calib-benchdiff.
//
// Every CI run produces bench measurements (BENCH_*.json, one nested
// document per harness) and self-profiles (--stats-json, a flat record
// array). This layer *normalizes* both shapes into uniform metric samples
// and appends them — one record per sample — to an append-only history
// stream in calib's own .cali format, stamped with the run metadata:
//
//   bd.bench      harness name              ("io", "proxyd", "stats:ci")
//   bd.metric     dotted metric path        ("ingest.mmap.records_per_sec")
//   bd.value      the measurement           (always Double)
//   bd.commit     commit id                 (CALIB_GIT_SHA env or build def)
//   bd.timestamp  ISO-8601 UTC wall time
//   bd.t          unix epoch seconds        (UInt)
//   bd.host       hostname
//   bd.hw         std::thread::hardware_concurrency() (UInt)
//   bd.build      build tag                 (CALIB_BUILD_TAG env; optional)
//   bd.seq        append-segment sequence   (UInt, monotonic per history)
//
// Dogfooding is the point: the history is ordinary calib input, so trends
// and baselines are CalQL queries (`cali-query hist.cali -q "AGGREGATE
// avg(bd.value) GROUP BY bd.bench,bd.metric,bd.commit"`), and the gate in
// analysis.hpp builds its series the same way. Appends are self-contained
// .cali segments (header + fresh attribute table per append); the reader
// treats segment concatenation as first-class, exactly like daemon flush
// files.
#pragma once

#include "jsonvalue.hpp"

#include "../common/recordmap.hpp"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace calib::benchdiff {

/// History attribute names (the "bd." namespace).
namespace attr {
inline constexpr const char* bench     = "bd.bench";
inline constexpr const char* metric    = "bd.metric";
inline constexpr const char* value     = "bd.value";
inline constexpr const char* commit    = "bd.commit";
inline constexpr const char* timestamp = "bd.timestamp";
inline constexpr const char* time_s    = "bd.t";
inline constexpr const char* host      = "bd.host";
inline constexpr const char* hw        = "bd.hw";
inline constexpr const char* build     = "bd.build";
inline constexpr const char* seq       = "bd.seq";
} // namespace attr

/// Run metadata stamped onto every appended record. Sources, strongest
/// first: explicit CLI flags, the input file's own "meta" object / meta
/// record (filled only where still empty), then detect()'s environment
/// fallbacks.
struct RunMeta {
    std::string commit;    ///< "" until known; appended as "unknown" then
    std::string timestamp; ///< ISO-8601 UTC
    std::uint64_t time_s = 0;
    std::string host;
    std::uint64_t hardware_concurrency = 0;
    std::string build; ///< optional free-form build tag

    /// Environment + clock defaults: CALIB_GIT_SHA (env, then the
    /// compile-time definition), now(), gethostname(),
    /// hardware_concurrency(), CALIB_BUILD_TAG.
    static RunMeta detect();

    /// Copy \a other's fields into still-empty fields of *this.
    void fill_from(const RunMeta& other);
};

/// One normalized metric sample.
struct MetricSample {
    std::string bench;
    std::string metric;
    double value = 0.0;
};

/// Which direction of change is a regression for this metric, derived
/// from the name (see classify_metric in history.cpp for the suffix
/// table). Untracked series are stored and queryable but never gated
/// unless an override assigns a direction.
enum class Direction {
    HigherBetter, ///< throughput-like: a drop is a regression
    LowerBetter,  ///< time-like: a rise is a regression
    Untracked     ///< recorded only
};

Direction classify_metric(std::string_view metric);

/// Normalize a nested BENCH_*.json document. \a fallback_bench names the
/// series when the document has no "bench" key; the document's "meta"
/// object fills still-empty fields of \a meta.
std::vector<MetricSample> normalize_bench_json(const JsonValue& doc,
                                               const std::string& fallback_bench,
                                               RunMeta& meta);

/// Normalize a --stats-json self-profile (flat record array as parsed by
/// io/jsonreader). Phase and timer rows become <name>.total_s samples,
/// counters keep their value, histograms contribute .mean and .p99; a
/// "meta" record fills still-empty fields of \a meta.
std::vector<MetricSample> normalize_stats_json(const std::vector<RecordMap>& records,
                                               const std::string& bench,
                                               RunMeta& meta);

/// Normalize one file, sniffing its shape: '{' = nested bench JSON,
/// '[' = stats record array. \a bench_hint overrides the series name
/// ("" = derive from the document or the file name). Throws
/// std::runtime_error on unreadable or malformed input.
std::vector<MetricSample> normalize_file(const std::string& path,
                                         const std::string& bench_hint,
                                         RunMeta& meta);

/// Append one history segment: every sample becomes one record stamped
/// with \a meta and \a seq. Creates the file when absent. Throws
/// std::runtime_error when the file cannot be opened.
void append_history(const std::string& path,
                    const std::vector<MetricSample>& samples,
                    const RunMeta& meta, std::uint64_t seq);

} // namespace calib::benchdiff
