#include "analysis.hpp"

#include "../engine/parallel_processor.hpp"
#include "../query/calql.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace calib::benchdiff {

// ------------------------------------------------------------- query plumbing

std::vector<RecordMap> history_query(const std::string& history_path,
                                     std::string_view calql,
                                     std::size_t threads) {
    QuerySpec spec = parse_calql(calql);
    engine::EngineOptions opts;
    opts.threads = threads ? threads : 1;
    engine::ParallelQueryProcessor engine(std::move(spec), opts);
    return engine.run({history_path}).result();
}

std::uint64_t next_seq(const std::string& history_path) {
    std::ifstream probe(history_path, std::ios::binary);
    if (!probe)
        return 0;
    probe.close();
    const auto rows = history_query(history_path, "AGGREGATE max(bd.seq) AS s");
    if (rows.empty())
        return 0;
    const Variant* v = rows.front().find("s");
    if (!v || v->empty())
        return 0;
    return v->to_uint() + 1;
}

// ----------------------------------------------------------------- overrides

bool glob_match(std::string_view pattern, std::string_view text) {
    std::size_t p = 0, t = 0;
    std::size_t star = std::string_view::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == text[t] || pattern[p] == '?')) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string_view::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

namespace {

[[noreturn]] void override_fail(const std::string& path, std::size_t line,
                                const std::string& what) {
    throw std::runtime_error(path + ":" + std::to_string(line) + ": " + what);
}

} // namespace

std::vector<Override> load_overrides(const std::string& path) {
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open override file " + path);

    std::vector<Override> out;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (const std::size_t hash = line.find('#'); hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string tok;
        Override ov;
        bool have_pattern = false;
        while (ls >> tok) {
            if (!have_pattern) {
                ov.pattern   = tok;
                have_pattern = true;
                continue;
            }
            if (tok == "skip") {
                ov.skip = true;
                continue;
            }
            const std::size_t eq = tok.find('=');
            if (eq == std::string::npos)
                override_fail(path, lineno, "expected key=value, got '" + tok + "'");
            const std::string key = tok.substr(0, eq);
            const std::string val = tok.substr(eq + 1);
            try {
                if (key == "window")
                    ov.window = static_cast<std::size_t>(std::stoull(val));
                else if (key == "k")
                    ov.k = std::stod(val);
                else if (key == "rel_floor")
                    ov.rel_floor = std::stod(val);
                else if (key == "min_samples")
                    ov.min_samples = static_cast<std::size_t>(std::stoull(val));
                else if (key == "direction") {
                    if (val == "higher")
                        ov.direction = Direction::HigherBetter;
                    else if (val == "lower")
                        ov.direction = Direction::LowerBetter;
                    else if (val == "untracked")
                        ov.direction = Direction::Untracked;
                    else
                        override_fail(path, lineno,
                                      "direction must be higher|lower|untracked");
                } else
                    override_fail(path, lineno, "unknown key '" + key + "'");
            } catch (const std::invalid_argument&) {
                override_fail(path, lineno, "bad value for '" + key + "'");
            } catch (const std::out_of_range&) {
                override_fail(path, lineno, "bad value for '" + key + "'");
            }
        }
        if (have_pattern)
            out.push_back(std::move(ov));
    }
    return out;
}

// ---------------------------------------------------------------- gate math

const char* status_name(Status s) noexcept {
    switch (s) {
    case Status::Ok:           return "ok";
    case Status::Regression:   return "regression";
    case Status::Improvement:  return "improvement";
    case Status::Insufficient: return "insufficient";
    case Status::Stale:        return "stale";
    case Status::Untracked:    return "untracked";
    case Status::Skipped:      return "skipped";
    }
    return "?";
}

namespace {

const char* direction_name(Direction d) noexcept {
    switch (d) {
    case Direction::HigherBetter: return "higher_better";
    case Direction::LowerBetter:  return "lower_better";
    case Direction::Untracked:    return "untracked";
    }
    return "?";
}

double median_of(std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// The per-(series, commit) averages, seq-ordered — the single query all
// gate analysis hangs off (the dogfooding boundary: below this line only
// result *rows* are touched, never history records).
constexpr const char* kSeriesQuery =
    "SELECT bd.bench, bd.metric, bd.seq, bd.commit, avg(bd.value) AS value "
    "AGGREGATE avg(bd.value) AS value "
    "GROUP BY bd.bench, bd.metric, bd.seq, bd.commit "
    "ORDER BY bd.bench, bd.metric, bd.seq";

struct Point {
    std::uint64_t seq = 0;
    double value      = 0.0;
    std::string commit;
};

struct Series {
    std::string bench;
    std::string metric;
    std::vector<Point> points; ///< seq-ascending
};

} // namespace

GateReport run_gate(const std::string& history_path,
                    const GateConfig& defaults,
                    const std::vector<Override>& overrides,
                    std::size_t threads) {
    GateReport report;
    {
        std::ifstream probe(history_path, std::ios::binary);
        if (!probe)
            return report;
    }

    const std::vector<RecordMap> rows =
        history_query(history_path, kSeriesQuery, threads);
    if (rows.empty())
        return report;

    // assemble contiguous (bench, metric) series from the ordered rows
    std::vector<Series> series;
    std::uint64_t latest = 0;
    for (const RecordMap& r : rows) {
        std::string bench  = r.get("bd.bench").to_string();
        std::string metric = r.get("bd.metric").to_string();
        Point p;
        p.seq    = r.get("bd.seq").to_uint();
        p.value  = r.get("value").to_double();
        p.commit = r.get("bd.commit").to_string();
        latest   = std::max(latest, p.seq);
        if (series.empty() || series.back().bench != bench ||
            series.back().metric != metric) {
            series.push_back({std::move(bench), std::move(metric), {}});
        }
        series.back().points.push_back(std::move(p));
    }
    report.seq = latest;

    for (const Series& s : series) {
        Verdict v;
        v.bench     = s.bench;
        v.metric    = s.metric;
        v.direction = classify_metric(s.metric);

        GateConfig cfg = defaults;
        bool skip      = false;
        const std::string key = s.bench + "/" + s.metric;
        for (const Override& ov : overrides) {
            if (!glob_match(ov.pattern, key))
                continue;
            if (ov.window)
                cfg.window = *ov.window;
            if (ov.k)
                cfg.k = *ov.k;
            if (ov.rel_floor)
                cfg.rel_floor = *ov.rel_floor;
            if (ov.min_samples)
                cfg.min_samples = *ov.min_samples;
            if (ov.direction)
                v.direction = *ov.direction;
            if (ov.skip)
                skip = true;
        }

        const Point& newest = s.points.back();
        v.current           = newest.value;
        if (newest.seq == latest && report.commit.empty())
            report.commit = newest.commit;

        if (skip) {
            v.status = Status::Skipped;
        } else if (newest.seq != latest) {
            v.status = Status::Stale;
        } else if (v.direction == Direction::Untracked) {
            v.status = Status::Untracked;
        } else {
            // trailing baseline window, excluding the point under test
            std::vector<double> prior;
            const std::size_t n = s.points.size() - 1;
            const std::size_t lo = n > cfg.window ? n - cfg.window : 0;
            for (std::size_t i = lo; i < n; ++i)
                prior.push_back(s.points[i].value);
            v.n_baseline = prior.size();

            if (prior.size() < cfg.min_samples) {
                v.status = Status::Insufficient;
            } else {
                v.baseline = median_of(prior);
                std::vector<double> dev;
                dev.reserve(prior.size());
                for (double x : prior)
                    dev.push_back(std::fabs(x - v.baseline));
                v.sigma     = 1.4826 * median_of(std::move(dev));
                v.threshold = std::max(cfg.k * v.sigma,
                                       cfg.rel_floor * std::fabs(v.baseline));
                v.delta     = v.current - v.baseline;
                v.ratio     = v.baseline != 0.0 ? v.current / v.baseline : 0.0;

                const double bad =
                    v.direction == Direction::LowerBetter ? v.delta : -v.delta;
                v.status = bad > v.threshold      ? Status::Regression
                           : bad < -v.threshold   ? Status::Improvement
                                                  : Status::Ok;
                ++report.gated;
                if (v.status == Status::Regression)
                    ++report.regressions;
                else if (v.status == Status::Improvement)
                    ++report.improvements;
            }
        }
        report.verdicts.push_back(std::move(v));
    }
    return report;
}

// ------------------------------------------------------------------ reports

namespace {

std::string fmt_num(double v) {
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

std::string fmt_pct(double frac) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", frac * 100.0);
    return buf;
}

void json_string(std::ostream& os, std::string_view s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
        case '"':  os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        case '\r': os << "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

void write_report_table(std::ostream& os, const GateReport& report,
                        bool verbose) {
    os << "benchdiff gate: commit "
       << (report.commit.empty() ? "unknown" : report.commit) << " seq "
       << report.seq << ": " << report.regressions << " regression(s), "
       << report.improvements << " improvement(s), " << report.gated
       << " gated of " << report.verdicts.size() << " series\n";
    for (const Verdict& v : report.verdicts) {
        const bool quiet = v.status == Status::Ok || v.status == Status::Stale ||
                           v.status == Status::Untracked ||
                           v.status == Status::Skipped;
        if (quiet && !verbose)
            continue;
        char status[16];
        std::snprintf(status, sizeof(status), "%-12s", status_name(v.status));
        os << "  " << status << " " << v.bench << "/" << v.metric;
        if (v.status == Status::Regression || v.status == Status::Improvement ||
            v.status == Status::Ok) {
            os << "  current=" << fmt_num(v.current)
               << " baseline=" << fmt_num(v.baseline) << " ("
               << fmt_pct(v.baseline != 0.0 ? v.delta / std::fabs(v.baseline)
                                            : 0.0)
               << ", threshold ±"
               << fmt_num(v.baseline != 0.0
                              ? 100.0 * v.threshold / std::fabs(v.baseline)
                              : v.threshold)
               << (v.baseline != 0.0 ? "%" : "") << ", n=" << v.n_baseline
               << ")";
        } else if (v.status == Status::Insufficient) {
            os << "  current=" << fmt_num(v.current) << " (n=" << v.n_baseline
               << " baseline samples, need more)";
        }
        os << "\n";
    }
}

void write_report_json(std::ostream& os, const GateReport& report) {
    os << "[\n";
    for (const Verdict& v : report.verdicts) {
        os << "{\"kind\": \"verdict\", \"bench\": ";
        json_string(os, v.bench);
        os << ", \"metric\": ";
        json_string(os, v.metric);
        os << ", \"status\": \"" << status_name(v.status)
           << "\", \"direction\": \"" << direction_name(v.direction)
           << "\", \"current\": " << fmt_num(v.current)
           << ", \"baseline\": " << fmt_num(v.baseline)
           << ", \"sigma\": " << fmt_num(v.sigma)
           << ", \"threshold\": " << fmt_num(v.threshold)
           << ", \"delta\": " << fmt_num(v.delta)
           << ", \"ratio\": " << fmt_num(v.ratio)
           << ", \"n_baseline\": " << v.n_baseline << "},\n";
    }
    os << "{\"kind\": \"summary\", \"commit\": ";
    json_string(os, report.commit.empty() ? "unknown" : report.commit);
    os << ", \"seq\": " << report.seq
       << ", \"series\": " << report.verdicts.size()
       << ", \"gated\": " << report.gated
       << ", \"regressions\": " << report.regressions
       << ", \"improvements\": " << report.improvements
       << ", \"failed\": " << (report.failed() ? 1 : 0) << "}\n]\n";
}

} // namespace calib::benchdiff
