#include "history.hpp"

#include "../io/caliwriter.hpp"
#include "../io/jsonreader.hpp"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unistd.h>

// Build-time fallback commit id (set by CMake from `git rev-parse`); the
// CALIB_GIT_SHA environment variable overrides it at run time.
#ifndef CALIB_GIT_SHA
#define CALIB_GIT_SHA ""
#endif

namespace calib::benchdiff {

// ------------------------------------------------------------------ RunMeta

RunMeta RunMeta::detect() {
    RunMeta meta;
    if (const char* env = std::getenv("CALIB_GIT_SHA"); env && *env)
        meta.commit = env;
    else if (*CALIB_GIT_SHA)
        meta.commit = CALIB_GIT_SHA;

    const std::time_t now = std::time(nullptr);
    meta.time_s           = static_cast<std::uint64_t>(now);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    meta.timestamp = buf;

    char host[256] = {};
    if (gethostname(host, sizeof(host) - 1) == 0 && host[0])
        meta.host = host;

    meta.hardware_concurrency = std::thread::hardware_concurrency();

    if (const char* env = std::getenv("CALIB_BUILD_TAG"); env && *env)
        meta.build = env;
    return meta;
}

void RunMeta::fill_from(const RunMeta& other) {
    if (commit.empty())
        commit = other.commit;
    if (timestamp.empty())
        timestamp = other.timestamp;
    if (time_s == 0)
        time_s = other.time_s;
    if (host.empty())
        host = other.host;
    if (hardware_concurrency == 0)
        hardware_concurrency = other.hardware_concurrency;
    if (build.empty())
        build = other.build;
}

// ------------------------------------------------------------ classification

Direction classify_metric(std::string_view m) {
    // histogram-derived samples carry a statistic suffix; classify by the
    // instrument name underneath
    if (m.ends_with(".mean") || m.ends_with(".p50") || m.ends_with(".p90") ||
        m.ends_with(".p99") || m.ends_with(".max"))
        m.remove_suffix(m.size() - m.rfind('.'));

    if (m.ends_with("_per_sec") || m.ends_with("_speedup") ||
        m.ends_with(".speedup") || m == "speedup")
        return Direction::HigherBetter;

    if (m.ends_with("_s") || m.ends_with("_ns") || m.ends_with("_us") ||
        m.ends_with("_ms") || m.ends_with("_seconds") ||
        m.find("ns_per_") != std::string_view::npos ||
        m.ends_with("overhead_pct"))
        return Direction::LowerBetter;

    return Direction::Untracked;
}

// ------------------------------------------------------- bench-JSON flatten

namespace {

std::string number_text(double v) {
    if (v == static_cast<double>(static_cast<long long>(v)))
        return std::to_string(static_cast<long long>(v));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

/// Pick the member of an array-element object that names it ("path":
/// "mmap" -> "mmap", "threads": 4 -> "threads4"). Returns "" when nothing
/// qualifies; *used_key receives the member to exclude from flattening.
std::string element_label(const JsonValue& obj, std::string* used_key) {
    static constexpr const char* preferred[] = {"path", "mode",    "name",
                                                "key",  "threads", "clients"};
    for (const char* d : preferred) {
        if (const JsonValue* v = obj.find(d)) {
            *used_key = d;
            if (v->is_string())
                return v->string;
            if (v->is_number())
                return std::string(d) + number_text(v->number);
        }
    }
    for (const auto& [k, v] : obj.object) {
        if (v.is_string()) {
            *used_key = k;
            return v.string;
        }
    }
    used_key->clear();
    return "";
}

void flatten(const JsonValue& v, const std::string& path,
             const std::string& bench, std::vector<MetricSample>& out) {
    switch (v.type) {
    case JsonValue::Type::Number:
        if (!path.empty())
            out.push_back({bench, path, v.number});
        break;
    case JsonValue::Type::Object:
        for (const auto& [k, child] : v.object)
            flatten(child, path.empty() ? k : path + "." + k, bench, out);
        break;
    case JsonValue::Type::Array:
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            const JsonValue& elem = v.array[i];
            if (elem.is_object()) {
                std::string used;
                std::string label = element_label(elem, &used);
                if (label.empty())
                    label = std::to_string(i);
                const std::string base =
                    path.empty() ? label : path + "." + label;
                for (const auto& [k, child] : elem.object)
                    if (k != used)
                        flatten(child, base + "." + k, bench, out);
            } else {
                flatten(elem, path + "." + std::to_string(i), bench, out);
            }
        }
        break;
    default:
        break; // strings, bools, null carry no measurement
    }
}

void meta_from_object(const JsonValue& obj, RunMeta& meta) {
    RunMeta m;
    if (const JsonValue* v = obj.find("commit"); v && v->is_string())
        m.commit = v->string;
    if (const JsonValue* v = obj.find("timestamp"); v && v->is_string())
        m.timestamp = v->string;
    if (const JsonValue* v = obj.find("host"); v && v->is_string())
        m.host = v->string;
    if (const JsonValue* v = obj.find("hardware_concurrency"); v && v->is_number())
        m.hardware_concurrency = static_cast<std::uint64_t>(v->number);
    if (const JsonValue* v = obj.find("build"); v && v->is_string())
        m.build = v->string;
    meta.fill_from(m);
}

std::string file_stem(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
    if (const std::size_t dot = stem.rfind('.'); dot != std::string::npos)
        stem.resize(dot);
    if (stem.rfind("BENCH_", 0) == 0)
        stem.erase(0, 6);
    return stem;
}

} // namespace

std::vector<MetricSample> normalize_bench_json(const JsonValue& doc,
                                               const std::string& fallback_bench,
                                               RunMeta& meta) {
    if (!doc.is_object())
        throw std::runtime_error("bench JSON: expected a top-level object");

    std::string bench = fallback_bench;
    if (const JsonValue* b = doc.find("bench"); b && b->is_string())
        bench = b->string;
    if (bench.empty())
        bench = "bench";

    if (const JsonValue* m = doc.find("meta"); m && m->is_object())
        meta_from_object(*m, meta);

    std::vector<MetricSample> out;
    for (const auto& [k, child] : doc.object) {
        // run metadata and workload identity are stamps, not measurements
        if (k == "meta" || k == "bench" || k == "hardware_concurrency")
            continue;
        flatten(child, k, bench, out);
    }
    return out;
}

std::vector<MetricSample> normalize_stats_json(const std::vector<RecordMap>& records,
                                               const std::string& bench,
                                               RunMeta& meta) {
    std::vector<MetricSample> out;
    for (const RecordMap& r : records) {
        const Variant* kind = r.find("kind");
        const Variant* name = r.find("name");
        if (!kind || !kind->is_string())
            continue;
        const std::string_view k = kind->as_string();
        if (k == "meta") {
            RunMeta m;
            if (const Variant* v = r.find("commit"); v && v->is_string())
                m.commit = v->to_string();
            if (const Variant* v = r.find("timestamp"); v && v->is_string())
                m.timestamp = v->to_string();
            if (const Variant* v = r.find("host"); v && v->is_string())
                m.host = v->to_string();
            if (const Variant* v = r.find("hardware_concurrency"))
                m.hardware_concurrency = v->to_uint();
            meta.fill_from(m);
            continue;
        }
        if (!name || !name->is_string())
            continue;
        const std::string n(name->as_string());
        if (k == "phase") {
            out.push_back({bench, "phase." + n + ".total_s",
                           r.get("total_s").to_double()});
        } else if (k == "timer") {
            // phase.* timers are already merged into the phase rows
            if (n.rfind("phase.", 0) == 0)
                continue;
            out.push_back({bench, n + ".total_s", r.get("total_s").to_double()});
        } else if (k == "counter") {
            out.push_back({bench, n, r.get("value").to_double()});
        } else if (k == "histogram") {
            out.push_back({bench, n + ".mean", r.get("mean").to_double()});
            out.push_back({bench, n + ".p99", r.get("p99").to_double()});
        }
        // gauges are instantaneous levels — meaningless across runs
    }
    return out;
}

std::vector<MetricSample> normalize_file(const std::string& path,
                                         const std::string& bench_hint,
                                         RunMeta& meta) {
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();

    std::size_t first = 0;
    while (first < text.size() &&
           (text[first] == ' ' || text[first] == '\t' || text[first] == '\n' ||
            text[first] == '\r'))
        ++first;
    if (first == text.size())
        throw std::runtime_error(path + ": empty input");

    try {
        if (text[first] == '[') {
            const std::string bench =
                !bench_hint.empty() ? bench_hint : "stats:" + file_stem(path);
            return normalize_stats_json(read_json_records(text), bench, meta);
        }
        return normalize_bench_json(parse_json(text),
                                    !bench_hint.empty() ? bench_hint
                                                        : file_stem(path),
                                    meta);
    } catch (const std::exception& e) {
        throw std::runtime_error(path + ": " + e.what());
    }
}

// ------------------------------------------------------------------- append

void append_history(const std::string& path,
                    const std::vector<MetricSample>& samples,
                    const RunMeta& meta, std::uint64_t seq) {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    if (!os)
        throw std::runtime_error("cannot open history file " + path);

    const std::string commit = meta.commit.empty() ? "unknown" : meta.commit;
    CaliWriter writer(os);
    RecordMap rec;
    for (const MetricSample& s : samples) {
        rec.clear();
        rec.append(attr::bench, Variant(std::string_view(s.bench)));
        rec.append(attr::metric, Variant(std::string_view(s.metric)));
        rec.append(attr::value, Variant(s.value));
        rec.append(attr::commit, Variant(std::string_view(commit)));
        if (!meta.timestamp.empty())
            rec.append(attr::timestamp, Variant(std::string_view(meta.timestamp)));
        rec.append(attr::time_s, Variant(meta.time_s));
        if (!meta.host.empty())
            rec.append(attr::host, Variant(std::string_view(meta.host)));
        rec.append(attr::hw, Variant(meta.hardware_concurrency));
        if (!meta.build.empty())
            rec.append(attr::build, Variant(std::string_view(meta.build)));
        rec.append(attr::seq, Variant(seq));
        writer.write_record(rec);
    }
}

} // namespace calib::benchdiff
