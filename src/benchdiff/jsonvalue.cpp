#include "jsonvalue.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace calib::benchdiff {

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue parse_document() {
        JsonValue v = parse_value();
        skip_ws();
        if (pos_ != text_.size())
            fail("trailing content");
        return v;
    }

private:
    [[noreturn]] void fail(const char* what) const {
        throw std::runtime_error("json parse error at byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue parse_value() {
        skip_ws();
        switch (peek()) {
        case '{':
            return parse_object();
        case '[':
            return parse_array();
        case '"': {
            JsonValue v;
            v.type   = JsonValue::Type::String;
            v.string = parse_string();
            return v;
        }
        case 't': {
            if (!consume_literal("true"))
                fail("bad literal");
            JsonValue v;
            v.type    = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
        }
        case 'f': {
            if (!consume_literal("false"))
                fail("bad literal");
            JsonValue v;
            v.type = JsonValue::Type::Bool;
            return v;
        }
        case 'n': {
            if (!consume_literal("null"))
                fail("bad literal");
            return JsonValue{};
        }
        default:
            return parse_number();
        }
    }

    JsonValue parse_object() {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            v.object.emplace_back(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue parse_array() {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"':  out += '"'; break;
            case '\\': out += '\\'; break;
            case '/':  out += '/'; break;
            case 'b':  out += '\b'; break;
            case 'f':  out += '\f'; break;
            case 'n':  out += '\n'; break;
            case 'r':  out += '\r'; break;
            case 't':  out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are not
                // emitted by any of our producers; pass them through raw)
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                fail("bad escape");
            }
        }
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        const std::string num(text_.substr(start, pos_ - start));
        char* end       = nullptr;
        const double dv = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size())
            fail("bad number");
        JsonValue v;
        v.type   = JsonValue::Type::Number;
        v.number = dv;
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue parse_json(std::string_view text) {
    return Parser(text).parse_document();
}

} // namespace calib::benchdiff
