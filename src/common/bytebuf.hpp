// Little byte-buffer reader/writer used for aggregation-DB serialization
// and simmpi message payloads. Fixed little-endian-ish host encoding —
// buffers never leave the process (or travel between threads of it).
#pragma once

#include "variant.hpp"

#include <cstddef>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace calib {

class ByteWriter {
public:
    explicit ByteWriter(std::vector<std::byte>& out) : out_(out) {}

    template <typename T>
    void put(const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        const std::size_t n = out_.size();
        out_.resize(n + sizeof(T));
        std::memcpy(out_.data() + n, &v, sizeof(T));
    }

    void put_bytes(const void* data, std::size_t len) {
        const std::size_t n = out_.size();
        out_.resize(n + len);
        if (len)
            std::memcpy(out_.data() + n, data, len);
    }

    void put_string(std::string_view sv) {
        put(static_cast<std::uint32_t>(sv.size()));
        put_bytes(sv.data(), sv.size());
    }

    /// Type tag + payload. Strings are encoded by content.
    void put_variant(const Variant& v) {
        put(static_cast<std::uint8_t>(v.type()));
        switch (v.type()) {
        case Variant::Type::Empty:
            break;
        case Variant::Type::Bool:
            put(static_cast<std::uint8_t>(v.as_bool() ? 1 : 0));
            break;
        case Variant::Type::String:
            put_string(v.as_string());
            break;
        default:
            put(v.as_uint()); // raw 8-byte payload for int/uint/double
        }
    }

    std::size_t size() const noexcept { return out_.size(); }

private:
    std::vector<std::byte>& out_;
};

class ByteReader {
public:
    explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

    template <typename T>
    T get() {
        static_assert(std::is_trivially_copyable_v<T>);
        require(sizeof(T));
        T v;
        std::memcpy(&v, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    /// View of the next \a len raw bytes (nested buffers); no copy.
    std::span<const std::byte> get_bytes(std::size_t len) {
        require(len);
        auto s = data_.subspan(pos_, len);
        pos_ += len;
        return s;
    }

    std::string_view get_string() {
        const auto len = get<std::uint32_t>();
        require(len);
        auto sv = std::string_view(reinterpret_cast<const char*>(data_.data() + pos_), len);
        pos_ += len;
        return sv;
    }

    Variant get_variant() {
        const auto type = static_cast<Variant::Type>(get<std::uint8_t>());
        switch (type) {
        case Variant::Type::Empty:
            return {};
        case Variant::Type::Bool:
            return Variant(get<std::uint8_t>() != 0);
        case Variant::Type::String:
            return Variant(get_string()); // interns
        case Variant::Type::Int:
            return Variant(static_cast<long long>(get<std::uint64_t>()));
        case Variant::Type::UInt:
            return Variant(static_cast<unsigned long long>(get<std::uint64_t>()));
        case Variant::Type::Double: {
            const auto bits = get<std::uint64_t>();
            double d;
            std::memcpy(&d, &bits, sizeof(double));
            return Variant(d);
        }
        }
        return {};
    }

    bool at_end() const noexcept { return pos_ == data_.size(); }
    std::size_t remaining() const noexcept { return data_.size() - pos_; }

private:
    void require(std::size_t n) const {
        if (pos_ + n > data_.size())
            throw std::runtime_error("ByteReader: truncated buffer");
    }

    std::span<const std::byte> data_;
    std::size_t pos_ = 0;
};

} // namespace calib
