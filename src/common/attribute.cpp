#include "attribute.hpp"

namespace calib {

AttributeRegistry::AttributeRegistry() {
    attributes_.reserve(64);
}

Attribute AttributeRegistry::create(std::string_view name, Variant::Type type,
                                    std::uint32_t properties) {
    {
        std::shared_lock lock(mutex_);
        auto it = by_name_.find(name);
        if (it != by_name_.end())
            return attributes_[it->second];
    }

    std::unique_lock lock(mutex_);
    auto it = by_name_.find(name);
    if (it != by_name_.end())
        return attributes_[it->second];

    const char* interned_name = intern(name);
    const id_t id             = static_cast<id_t>(attributes_.size());
    attributes_.emplace_back(id, interned_name, type, properties);
    by_name_.emplace(std::string_view(interned_name), id);
    count_.store(attributes_.size(), std::memory_order_release);
    return attributes_.back();
}

Attribute AttributeRegistry::find(std::string_view name) const {
    std::shared_lock lock(mutex_);
    auto it = by_name_.find(name);
    return it != by_name_.end() ? attributes_[it->second] : Attribute();
}

Attribute AttributeRegistry::get(id_t id) const {
    std::shared_lock lock(mutex_);
    return id < attributes_.size() ? attributes_[id] : Attribute();
}

std::size_t AttributeRegistry::size() const {
    std::shared_lock lock(mutex_);
    return attributes_.size();
}

std::vector<Attribute> AttributeRegistry::all() const {
    std::shared_lock lock(mutex_);
    return attributes_;
}

} // namespace calib
