// calib — flexible data aggregation for performance profiling.
// Basic type definitions shared by all modules.
#pragma once

#include <cstdint>
#include <limits>

namespace calib {

/// Identifier type for attributes, nodes, and other registry-managed objects.
using id_t = std::uint32_t;

/// Sentinel value denoting "no id".
inline constexpr id_t invalid_id = std::numeric_limits<id_t>::max();

} // namespace calib
