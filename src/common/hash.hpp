// FNV-1a hashing used for string interning and aggregation-key lookup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace calib {

inline constexpr std::uint64_t fnv1a_offset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t fnv1a_prime  = 0x100000001b3ULL;

/// Feed a range of bytes into an FNV-1a accumulator.
constexpr std::uint64_t fnv1a(const char* data, std::size_t len,
                              std::uint64_t h = fnv1a_offset) noexcept {
    for (std::size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= fnv1a_prime;
    }
    return h;
}

constexpr std::uint64_t fnv1a(std::string_view sv,
                              std::uint64_t h = fnv1a_offset) noexcept {
    return fnv1a(sv.data(), sv.size(), h);
}

/// Feed a trivially-copyable value into an FNV-1a accumulator.
template <typename T>
std::uint64_t fnv1a_value(const T& v, std::uint64_t h = fnv1a_offset) noexcept {
    return fnv1a(reinterpret_cast<const char*>(&v), sizeof(T), h);
}

/// 64->64 bit finalizer (splitmix64) to spread FNV output across table slots.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace calib
