// RecordBatch: the columnar morsel representation for the batched query
// pipeline (docs/ENGINE.md, "Columnar batch execution").
//
// A batch holds up to ~batch-size records transposed into per-attribute
// columns: one Variant vector plus a validity bitmap per attribute. Readers
// append parsed fields straight into the columns, the LET and WHERE stages
// run tight per-column loops producing a selection vector, and the
// aggregation database probes its hash table over the batch with per-column
// kernel update loops — no per-record Entry vectors on the hot path.
//
// Byte-identity with the record-at-a-time shim is non-negotiable (the fuzz
// differential runner guards it), so the batch preserves *exact* record
// semantics:
//
//   - A row is stored columnar only while its fields hit columns in
//     strictly increasing column-creation order (the common case: streams
//     repeat one field order). A duplicate attribute, a permuted field
//     order, or an out-of-range attribute id demotes the row to an
//     "overflow" IdRecord carried alongside the columns; stages fall back
//     to record-at-a-time evaluation for exactly those rows.
//   - Post-build stages (joined globals, LET targets) write through
//     append-target columns that remember, per row, whether the value
//     overwrote an existing field in place or was logically appended at
//     end-of-record; materialize() reconstructs the original entry order
//     exactly (non-appended fields in column order, then appended fields
//     in append order), so truncation at SnapshotRecord::max_entries and
//     passthrough output match the record path bit for bit.
#pragma once

#include "attribute.hpp"
#include "idrecord.hpp"
#include "snapshot.hpp"
#include "variant.hpp"

#include <cassert>
#include <cstdint>
#include <vector>

namespace calib {

class RecordBatch {
public:
    struct Column {
        id_t attribute = invalid_id;
        std::vector<Variant> values;      ///< one slot per row
        std::vector<std::uint8_t> valid;  ///< 1 when the row has this field
        /// Per-row "logically appended at end-of-record" flags; sized only
        /// while the column is an append target (LET target / joined
        /// global) in the current batch.
        std::vector<std::uint8_t> appended;
        bool is_append_target = false;
    };

    /// Attribute ids at or above this bound never get a column (the flat
    /// id->column map must stay small); rows carrying one demote to
    /// overflow records. Mirrors the reader's local-id bound.
    static constexpr id_t max_column_attr = 1u << 24;

    RecordBatch() = default;

    // -- row building (reader side) -----------------------------------------

    void begin_row() {
        assert(!in_row_);
        in_row_       = true;
        cur_overflow_ = false;
        cur_last_col_ = -1;
        cur_entries_  = 0;
    }

    void append(id_t attribute, const Variant& value) {
        ++cur_entries_;
        if (cur_overflow_) {
            cur_rec_->append(attribute, value);
            return;
        }
        if (attribute >= max_column_attr) {
            demote_current_row();
            cur_rec_->append(attribute, value);
            return;
        }
        const std::size_t ci = column_for(attribute);
        if (static_cast<std::int64_t>(ci) <= cur_last_col_) {
            // duplicate attribute or out-of-order field: not representable
            // columnar without losing entry order — keep the row as a record
            demote_current_row();
            cur_rec_->append(attribute, value);
            return;
        }
        Column& c = columns_[ci];
        c.values.push_back(value);
        c.valid.push_back(1);
        cur_last_col_ = static_cast<std::int64_t>(ci);
        cur_written_.push_back(static_cast<std::uint32_t>(ci));
    }

    /// Close the current row; returns its entry count.
    std::size_t end_row();

    /// Append a whole record (compatibility path, e.g. the JSON reader).
    void append_record(const IdRecord& rec);

    std::size_t rows() const noexcept { return rows_; }
    bool empty() const noexcept { return rows_ == 0; }

    /// Drop all rows. The column layout (stream schema) is retained, so the
    /// next batch from the same stream refills without re-creating columns.
    void clear();

    // -- column access (columnar stages) ------------------------------------

    std::size_t num_columns() const noexcept { return columns_.size(); }
    const std::vector<Column>& columns() const noexcept { return columns_; }
    const Column& column_at(std::size_t i) const noexcept { return columns_[i]; }

    /// Column index for \a attribute, or -1.
    std::int32_t column_index(id_t attribute) const noexcept {
        if (attribute >= col_of_attr_.size())
            return -1;
        const std::uint32_t v = col_of_attr_[attribute];
        return v == 0 ? -1 : static_cast<std::int32_t>(v - 1);
    }

    /// Number of logical entries in \a row (including appended ones) —
    /// the aggregation stage falls back to record-at-a-time processing for
    /// rows beyond SnapshotRecord::max_entries, where truncation applies.
    std::uint32_t entries_in_row(std::size_t row) const noexcept {
        return nentries_[row];
    }

    bool is_overflow(std::size_t row) const noexcept {
        return row < overflow_of_row_.size() && overflow_of_row_[row] != 0;
    }
    const IdRecord& overflow_record(std::size_t row) const noexcept {
        return overflow_[overflow_of_row_[row] - 1];
    }
    IdRecord& overflow_record(std::size_t row) noexcept {
        return overflow_[overflow_of_row_[row] - 1];
    }

    // -- post-build writes (LET targets, joined globals) --------------------

    /// Get-or-create the column for \a attribute and mark it as an append
    /// target: rows that do not already carry the field record set values
    /// as logically appended at end-of-record. Only valid between rows
    /// (after the batch is built). Returns the column index — creation may
    /// reallocate columns(), so hold indices, not references.
    std::size_t append_target(id_t attribute);

    /// Record `set` semantics on a conforming row: overwrite the existing
    /// field in place, or append at end-of-record. \a col must be an
    /// append target.
    void set_row_value(std::size_t col, std::size_t row, const Variant& v) {
        Column& c = columns_[col];
        assert(c.is_append_target);
        if (c.valid[row]) {
            c.values[row] = v;
            return;
        }
        c.values[row]   = v;
        c.valid[row]    = 1;
        c.appended[row] = 1;
        ++nentries_[row];
    }

    /// Reconstruct \a row in exact record entry order.
    void materialize(std::size_t row, IdRecord& out) const;

private:
    std::size_t column_for(id_t attribute) {
        if (attribute < col_of_attr_.size()) {
            const std::uint32_t v = col_of_attr_[attribute];
            if (v != 0)
                return v - 1;
        }
        return create_column(attribute);
    }

    std::size_t create_column(id_t attribute);
    void demote_current_row();

    std::vector<Column> columns_;
    std::vector<std::uint32_t> col_of_attr_;     ///< attr id -> column + 1
    std::vector<std::uint32_t> nentries_;        ///< per-row entry count
    std::vector<std::uint32_t> overflow_of_row_; ///< row -> overflow_ + 1
    std::vector<IdRecord> overflow_;
    std::vector<std::uint32_t> append_targets_;  ///< columns in append order
    std::size_t rows_ = 0;

    // current-row build state
    bool in_row_                = false;
    bool cur_overflow_          = false;
    std::int64_t cur_last_col_  = -1;
    std::uint32_t cur_entries_  = 0;
    IdRecord* cur_rec_          = nullptr;
    std::vector<std::uint32_t> cur_written_; ///< columns written this row
};

} // namespace calib
