// Small string and parsing utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace calib::util {

/// Split on a single character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Split on a single character, honouring backslash escapes of the
/// separator (used by the .cali stream format).
std::vector<std::string> split_escaped(std::string_view s, char sep);

std::string_view trim(std::string_view s);

bool iequals(std::string_view a, std::string_view b);

std::string to_lower(std::string_view s);

/// Escape separator-relevant characters with backslashes: '\' and every
/// char in \a special get a backslash prefix; newline and carriage return
/// become "\n" / "\r" (they cannot survive in a line-oriented format —
/// readers strip trailing '\r' for CRLF tolerance).
std::string escape(std::string_view s, std::string_view special);

/// Undo escape(): "\n" and "\r" restore the control character, any other
/// escaped char restores itself.
std::string unescape(std::string_view s);

/// True if \a text looks like a number (optional sign, digits, dot, exp).
bool looks_numeric(std::string_view text);

/// Format a byte count as a human-readable string ("1.5 MiB").
std::string format_bytes(double bytes);

/// Parse a non-negative size: plain digits with an optional case-insensitive
/// binary suffix K/M/G (e.g. "4096", "64k", "2M"). Returns false on empty
/// input, trailing garbage, or overflow; \a out is untouched on failure.
bool parse_size(std::string_view text, std::size_t& out);

} // namespace calib::util
