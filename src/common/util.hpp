// Small string and parsing utilities shared across modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace calib::util {

/// Split on a single character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Split on a single character, honouring backslash escapes of the
/// separator (used by the .cali stream format).
std::vector<std::string> split_escaped(std::string_view s, char sep);

std::string_view trim(std::string_view s);

bool iequals(std::string_view a, std::string_view b);

std::string to_lower(std::string_view s);

/// Escape separator-relevant characters with backslashes: '\' and every
/// char in \a special get a backslash prefix; newline and carriage return
/// become "\n" / "\r" (they cannot survive in a line-oriented format —
/// readers strip trailing '\r' for CRLF tolerance).
std::string escape(std::string_view s, std::string_view special);

/// Undo escape(): "\n" and "\r" restore the control character, any other
/// escaped char restores itself.
std::string unescape(std::string_view s);

/// True if \a text looks like a number (optional sign, digits, dot, exp).
bool looks_numeric(std::string_view text);

/// Format a byte count as a human-readable string ("1.5 MiB").
std::string format_bytes(double bytes);

/// Parse a non-negative size: plain digits with an optional case-insensitive
/// binary suffix K/M/G (e.g. "4096", "64k", "2M"). Returns false on empty
/// input, trailing garbage, or overflow; \a out is untouched on failure.
bool parse_size(std::string_view text, std::size_t& out);

/// Parse a non-negative duration into microseconds: plain digits with an
/// optional case-insensitive suffix us/ms/s/m/h (e.g. "500ms", "10s",
/// "1500" = 1500 µs). Same contract as parse_size: false on empty input,
/// trailing garbage, or overflow; \a out_us is untouched on failure.
bool parse_duration(std::string_view text, std::uint64_t& out_us);

/// Render a microsecond count with the largest suffix that divides it
/// evenly ("10s", "500ms", "1500us"). Round-trips through parse_duration.
std::string format_duration(std::uint64_t us);

/// getenv + parse_size with diagnostics: unset returns \a fallback
/// silently; a set-but-unparsable value logs a warning naming the variable
/// and returns \a fallback. This is the one validation path for size-like
/// env knobs — the CLI flags use parse_size directly and error out.
std::size_t env_size(const char* name, std::size_t fallback);

/// getenv + parse_duration twin of env_size (duration-valued env knobs).
std::uint64_t env_duration(const char* name, std::uint64_t fallback_us);

} // namespace calib::util
