// Minimal leveled logger. Verbosity is controlled programmatically or via
// the CALIB_LOG_VERBOSITY environment variable (0=errors .. 3=debug).
#pragma once

#include <sstream>
#include <string>

namespace calib {

class Log {
public:
    enum Level { Error = 0, Warn = 1, Info = 2, Debug = 3 };

    explicit Log(Level level) : level_(level) {}
    ~Log();

    template <typename T>
    Log& operator<<(const T& v) {
        if (enabled(level_))
            stream_ << v;
        return *this;
    }

    static bool enabled(Level level);
    static void set_verbosity(int level);
    static int verbosity();

private:
    Level level_;
    std::ostringstream stream_;
};

inline Log log_error() { return Log(Log::Error); }
inline Log log_warn()  { return Log(Log::Warn); }
inline Log log_info()  { return Log(Log::Info); }
inline Log log_debug() { return Log(Log::Debug); }

} // namespace calib
