// The logger moved to the observability layer (src/obs/log.hpp) so it can
// share the per-thread ids of the metrics subsystem. This forwarding
// header keeps existing includes working.
#pragma once

#include "../obs/log.hpp"
