// Snapshot records: a flat set of (attribute-id, value) entries capturing
// the blackboard state at one point in time. This is the unit of data that
// flows from the measurement layer into the aggregation service.
//
// SnapshotRecord has fixed inline capacity and never allocates, so it is
// safe to build inside a sampling signal handler.
#pragma once

#include "attribute.hpp"
#include "types.hpp"
#include "variant.hpp"

#include <algorithm>
#include <cstddef>

namespace calib {

/// One attribute:value pair inside a snapshot.
struct Entry {
    id_t attribute = invalid_id;
    Variant value;

    Entry() = default;
    Entry(id_t a, const Variant& v) : attribute(a), value(v) {}

    bool operator==(const Entry& rhs) const noexcept {
        return attribute == rhs.attribute && value == rhs.value;
    }
};

/// Fixed-capacity, allocation-free snapshot record.
class SnapshotRecord {
public:
    static constexpr std::size_t max_entries = 64;

    SnapshotRecord() = default;

    /// Append an entry; silently drops entries beyond capacity and records
    /// the overflow in dropped(). (Real tools surface this as a warning.)
    void append(id_t attribute, const Variant& value) noexcept {
        if (size_ < max_entries)
            entries_[size_++] = Entry(attribute, value);
        else
            ++dropped_;
    }
    void append(const Entry& e) noexcept { append(e.attribute, e.value); }

    /// Append or overwrite the entry for \a attribute.
    void set(id_t attribute, const Variant& value) noexcept {
        for (std::size_t i = 0; i < size_; ++i)
            if (entries_[i].attribute == attribute) {
                entries_[i].value = value;
                return;
            }
        append(attribute, value);
    }

    /// First entry for \a attribute, or nullptr (one scan for
    /// presence + value).
    const Entry* find(id_t attribute) const noexcept {
        for (std::size_t i = 0; i < size_; ++i)
            if (entries_[i].attribute == attribute)
                return &entries_[i];
        return nullptr;
    }

    /// First value recorded for \a attribute, or an empty Variant.
    Variant get(id_t attribute) const noexcept {
        const Entry* e = find(attribute);
        return e ? e->value : Variant();
    }

    bool contains(id_t attribute) const noexcept { return find(attribute) != nullptr; }

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }
    std::size_t dropped() const noexcept { return dropped_; }

    const Entry* begin() const noexcept { return entries_; }
    const Entry* end() const noexcept { return entries_ + size_; }
    const Entry& operator[](std::size_t i) const noexcept { return entries_[i]; }

    void clear() noexcept {
        size_    = 0;
        dropped_ = 0;
    }

    /// Sort entries by attribute id (canonical order for key comparison).
    void sort() noexcept {
        std::sort(entries_, entries_ + size_,
                  [](const Entry& a, const Entry& b) { return a.attribute < b.attribute; });
    }

private:
    Entry entries_[max_entries];
    std::size_t size_    = 0;
    std::size_t dropped_ = 0;
};

} // namespace calib
