// Append-only string interning pool.
//
// All string values that enter the data model are interned here, so that
// a string value can be carried in a Variant as a stable `const char*`:
// equal strings always yield the same pointer, which makes value equality
// a pointer comparison and keeps the hot aggregation path allocation-free.
//
// Each interned string is stored with a small header carrying its
// precomputed FNV-1a hash and length, so hashing an interned string during
// aggregation-key construction is a single load.
#pragma once

#include "hash.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace calib {

class StringPool {
public:
    StringPool();
    ~StringPool();

    StringPool(const StringPool&)            = delete;
    StringPool& operator=(const StringPool&) = delete;

    /// Intern \a sv and return a stable, NUL-terminated pointer.
    /// Identical strings always return the identical pointer.
    const char* intern(std::string_view sv);

    /// Precomputed content hash of an interned string returned by intern().
    static std::uint64_t hash(const char* interned) noexcept;

    /// Length of an interned string (cheaper than strlen).
    static std::uint32_t length(const char* interned) noexcept;

    /// True if \a ptr was returned by this pool (debug aid; O(#blocks)).
    bool contains(const char* ptr) const;

    /// Number of distinct strings interned so far.
    std::size_t size() const;

    /// Total bytes of string payload stored (excluding headers).
    std::size_t payload_bytes() const;

    /// Process-global pool used by the runtime and the offline readers.
    static StringPool& global();

private:
    struct Header {
        std::uint64_t hash;
        std::uint32_t len;
        std::uint32_t pad = 0; // keep the payload 8-byte aligned
    };

    static constexpr std::size_t block_size = 64 * 1024;

    const char* insert_locked(std::string_view sv, std::uint64_t h);

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<char[]>> blocks_;
    std::size_t block_fill_ = 0;
    std::size_t payload_    = 0;
    // hash -> interned pointers with that hash (collision chain).
    std::unordered_map<std::uint64_t, std::vector<const char*>> index_;
};

/// Convenience wrapper: intern into the process-global pool.
inline const char* intern(std::string_view sv) {
    return StringPool::global().intern(sv);
}

} // namespace calib
