// An 8-byte tagged value: the "value" half of the key:value data model.
//
// Strings are carried as interned `const char*` from the process-global
// StringPool, so Variant is trivially copyable, equality on strings is a
// pointer comparison, and hashing a string value is a single load of the
// pool's precomputed hash.
#pragma once

#include "hash.hpp"
#include "stringpool.hpp"

#include <cstdint>
#include <string>
#include <string_view>

namespace calib {

class Variant {
public:
    enum class Type : std::uint8_t { Empty = 0, Bool, Int, UInt, Double, String };

    constexpr Variant() noexcept : type_(Type::Empty), u_{} {}

    constexpr explicit Variant(bool b) noexcept : type_(Type::Bool) { u_.b = b; }
    constexpr Variant(int i) noexcept : type_(Type::Int) { u_.i = i; }
    constexpr Variant(long long i) noexcept : type_(Type::Int) { u_.i = i; }
    constexpr Variant(long i) noexcept : type_(Type::Int) { u_.i = i; }
    constexpr Variant(unsigned long long u) noexcept : type_(Type::UInt) { u_.u = u; }
    constexpr Variant(unsigned long u) noexcept : type_(Type::UInt) { u_.u = u; }
    constexpr Variant(unsigned u) noexcept : type_(Type::UInt) { u_.u = u; }
    constexpr Variant(double d) noexcept : type_(Type::Double) { u_.d = d; }

    /// Construct a string value, interning through the global pool.
    Variant(std::string_view sv) : type_(Type::String) { u_.s = intern(sv); }
    Variant(const char* s) : Variant(std::string_view(s)) {}
    Variant(const std::string& s) : Variant(std::string_view(s)) {}

    /// Wrap an already-interned pointer without re-hashing.
    static Variant from_interned(const char* s) noexcept {
        Variant v;
        v.type_ = Type::String;
        v.u_.s  = s;
        return v;
    }

    constexpr Type type() const noexcept { return type_; }
    constexpr bool empty() const noexcept { return type_ == Type::Empty; }
    constexpr bool is_string() const noexcept { return type_ == Type::String; }
    constexpr bool is_numeric() const noexcept {
        return type_ == Type::Int || type_ == Type::UInt || type_ == Type::Double;
    }
    constexpr bool is_bool() const noexcept { return type_ == Type::Bool; }

    // -- typed access (unchecked; caller verifies type) ---------------------
    constexpr bool as_bool() const noexcept { return u_.b; }
    constexpr std::int64_t as_int() const noexcept { return u_.i; }
    constexpr std::uint64_t as_uint() const noexcept { return u_.u; }
    constexpr double as_double() const noexcept { return u_.d; }
    const char* as_cstr() const noexcept { return u_.s; }
    std::string_view as_string() const noexcept {
        return {u_.s, StringPool::length(u_.s)};
    }

    // -- converting access ---------------------------------------------------
    /// Numeric value as double (Bool -> 0/1, Empty/String -> 0).
    double to_double() const noexcept;
    /// Numeric value as signed integer (truncating).
    std::int64_t to_int() const noexcept;
    /// Numeric value as unsigned integer (truncating, clamped at 0).
    std::uint64_t to_uint() const noexcept;
    /// Truthiness: non-zero numbers, non-empty strings, true bools.
    bool to_bool() const noexcept;

    /// Render for human-readable output ("" for Empty). Doubles use
    /// "%.12g" — readable, but not guaranteed to round-trip; writers that
    /// are read back use to_repr().
    std::string to_string() const;

    /// Lossless rendering: doubles as the shortest decimal that parses
    /// back to the identical value; other types match to_string().
    std::string to_repr() const;

    /// Parse a textual representation as the given type.
    /// Returns an Empty variant when the text does not parse.
    static Variant parse(Type type, std::string_view text);

    /// Best-effort typed parse: int, then double, then string.
    static Variant parse_guess(std::string_view text);

    /// Content hash, mixed into aggregation-key hashes.
    std::uint64_t hash() const noexcept;

    /// Identity equality (type-strict), consistent with hash(): doubles
    /// compare by bit pattern, so NaN == NaN and +0.0 != -0.0. This is the
    /// relation aggregation keys group by; numeric *ordering* lives in
    /// compare().
    bool operator==(const Variant& rhs) const noexcept;
    bool operator!=(const Variant& rhs) const noexcept { return !(*this == rhs); }

    /// Total order: by type tag, then value. Strings compare by content so
    /// that report ordering is deterministic and human-sensible.
    bool operator<(const Variant& rhs) const noexcept;

    /// Numeric-aware comparison used by WHERE clauses and ORDER BY:
    /// compares numerics by value regardless of exact type — cross-type
    /// integer comparisons are exact over the full int64/uint64/double
    /// domain (nothing is coerced through a lossy double or wrapped
    /// through to_int()). NaN forms a total order: it compares equal to
    /// itself and after every other numeric value (NaN sorts last), so
    /// sort comparators built on compare() satisfy strict weak ordering.
    /// Strings compare lexicographically; numeric vs. string compares by
    /// type tag. Returns <0, 0, >0.
    int compare(const Variant& rhs) const noexcept;

    static const char* type_name(Type t) noexcept;
    static Type type_from_name(std::string_view name) noexcept;

private:
    Type type_;
    union U {
        bool b;
        std::int64_t i;
        std::uint64_t u;
        double d;
        const char* s;
        constexpr U() : u(0) {}
    } u_;
};

} // namespace calib
