// IdRecord: the id-based offline record representation — attribute *ids*
// mapped to values, like SnapshotRecord, but growable (offline records are
// built on the heap, not inside a signal handler, so a fixed capacity would
// only lose data).
//
// Readers resolve attribute names against a query's AttributeRegistry once
// per distinct name and emit IdRecords, so everything downstream of the
// reader boundary — LET evaluation, WHERE filtering, aggregation — works
// on integer compares. Names reappear only at the result boundary
// (AggregationDB::flush / QueryProcessor::result), where row counts are
// small. docs/RECORDS.md describes the contract.
#pragma once

#include "attribute.hpp"
#include "recordmap.hpp"
#include "snapshot.hpp"

#include <span>
#include <vector>

namespace calib {

class IdRecord {
public:
    using value_type = Entry;

    IdRecord() = default;

    void append(id_t attribute, const Variant& value) {
        entries_.emplace_back(attribute, value);
    }
    void append(const Entry& e) { entries_.push_back(e); }

    /// Overwrite the first entry for \a attribute, or append.
    void set(id_t attribute, const Variant& value) {
        for (Entry& e : entries_)
            if (e.attribute == attribute) {
                e.value = value;
                return;
            }
        entries_.emplace_back(attribute, value);
    }

    /// First entry for \a attribute, or nullptr (one scan for
    /// presence + value).
    const Entry* find(id_t attribute) const noexcept {
        for (const Entry& e : entries_)
            if (e.attribute == attribute)
                return &e;
        return nullptr;
    }

    /// First value for \a attribute, or an empty Variant.
    Variant get(id_t attribute) const noexcept {
        const Entry* e = find(attribute);
        return e ? e->value : Variant();
    }

    bool contains(id_t attribute) const noexcept { return find(attribute) != nullptr; }

    std::size_t size() const noexcept { return entries_.size(); }
    bool empty() const noexcept { return entries_.empty(); }
    void clear() noexcept { entries_.clear(); }
    void reserve(std::size_t n) { entries_.reserve(n); }

    auto begin() const noexcept { return entries_.begin(); }
    auto end() const noexcept { return entries_.end(); }
    const Entry& operator[](std::size_t i) const noexcept { return entries_[i]; }

    /// Entry view for span-based consumers (filters, AggregationDB).
    std::span<const Entry> span() const noexcept {
        return {entries_.data(), entries_.size()};
    }

private:
    std::vector<Entry> entries_;
};

/// Convert back to the name-based representation (result boundary, legacy
/// sinks). Entries whose attribute is unknown to \a registry are dropped.
inline RecordMap to_recordmap(const IdRecord& record, const AttributeRegistry& registry) {
    RecordMap out;
    out.reserve(record.size());
    for (const Entry& e : record) {
        const Attribute a = registry.get(e.attribute);
        if (a.valid())
            out.append(a.name(), e.value);
    }
    return out;
}

} // namespace calib
