#include "util.hpp"

#include "log.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace calib::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
    std::vector<std::string_view> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::vector<std::string> split_escaped(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::string cur;
    bool esc = false;
    for (char c : s) {
        if (esc) {
            // keep the escape sequence intact; callers unescape() per field
            cur.push_back(c);
            esc = false;
        } else if (c == '\\') {
            cur.push_back(c);
            esc = true;
        } else if (c == sep) {
            out.push_back(std::move(cur));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(std::move(cur));
    return out;
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
        s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
        s.remove_suffix(1);
    return s;
}

bool iequals(std::string_view a, std::string_view b) {
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

std::string to_lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

std::string escape(std::string_view s, std::string_view special) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\n') {
            // a newline can never survive in a line-oriented format
            out += "\\n";
            continue;
        }
        if (c == '\r') {
            // readers strip a trailing '\r' (CRLF tolerance), so a raw CR
            // ending a line would not survive a round trip
            out += "\\r";
            continue;
        }
        if (c == '\\' || special.find(c) != std::string_view::npos)
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string unescape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    bool esc = false;
    for (char c : s) {
        if (esc) {
            out.push_back(c == 'n' ? '\n' : c == 'r' ? '\r' : c);
            esc = false;
        } else if (c == '\\') {
            esc = true;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

bool looks_numeric(std::string_view text) {
    if (text.empty())
        return false;
    std::size_t i = 0;
    if (text[0] == '+' || text[0] == '-')
        i = 1;
    bool digits = false, dot = false, expo = false;
    for (; i < text.size(); ++i) {
        const char c = text[i];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digits = true;
        } else if (c == '.' && !dot && !expo) {
            dot = true;
        } else if ((c == 'e' || c == 'E') && digits && !expo) {
            expo = true;
            if (i + 1 < text.size() && (text[i + 1] == '+' || text[i + 1] == '-'))
                ++i;
        } else {
            return false;
        }
    }
    return digits;
}

std::string format_bytes(double bytes) {
    static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int u = 0;
    while (bytes >= 1024.0 && u < 4) {
        bytes /= 1024.0;
        ++u;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, units[u]);
    return buf;
}

bool parse_size(std::string_view text, std::size_t& out) {
    if (text.empty())
        return false;
    std::size_t value = 0;
    std::size_t i     = 0;
    bool digits       = false;
    for (; i < text.size(); ++i) {
        const char c = text[i];
        if (!std::isdigit(static_cast<unsigned char>(c)))
            break;
        const std::size_t d = static_cast<std::size_t>(c - '0');
        if (value > (std::numeric_limits<std::size_t>::max() - d) / 10)
            return false; // overflow
        value  = value * 10 + d;
        digits = true;
    }
    if (!digits)
        return false;
    if (i < text.size()) {
        std::size_t mult = 0;
        switch (std::tolower(static_cast<unsigned char>(text[i]))) {
        case 'k': mult = std::size_t(1) << 10; break;
        case 'm': mult = std::size_t(1) << 20; break;
        case 'g': mult = std::size_t(1) << 30; break;
        default: return false;
        }
        if (++i != text.size())
            return false; // trailing garbage after the suffix
        if (value > std::numeric_limits<std::size_t>::max() / mult)
            return false;
        value *= mult;
    }
    out = value;
    return true;
}

bool parse_duration(std::string_view text, std::uint64_t& out_us) {
    if (text.empty())
        return false;
    std::uint64_t value = 0;
    std::size_t i       = 0;
    bool digits         = false;
    for (; i < text.size(); ++i) {
        const char c = text[i];
        if (!std::isdigit(static_cast<unsigned char>(c)))
            break;
        const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
        if (value > (std::numeric_limits<std::uint64_t>::max() - d) / 10)
            return false; // overflow
        value  = value * 10 + d;
        digits = true;
    }
    if (!digits)
        return false;
    std::uint64_t mult = 1; // bare number = microseconds
    if (i < text.size()) {
        const std::string suffix = to_lower(text.substr(i));
        if (suffix == "us")
            mult = 1;
        else if (suffix == "ms")
            mult = 1000;
        else if (suffix == "s")
            mult = 1000 * 1000;
        else if (suffix == "m")
            mult = std::uint64_t(60) * 1000 * 1000;
        else if (suffix == "h")
            mult = std::uint64_t(3600) * 1000 * 1000;
        else
            return false;
        if (value > std::numeric_limits<std::uint64_t>::max() / mult)
            return false;
    }
    out_us = value * mult;
    return true;
}

std::string format_duration(std::uint64_t us) {
    struct Unit {
        std::uint64_t mult;
        const char* suffix;
    };
    static const Unit units[] = {{std::uint64_t(3600) * 1000 * 1000, "h"},
                                 {std::uint64_t(60) * 1000 * 1000, "m"},
                                 {1000 * 1000, "s"},
                                 {1000, "ms"}};
    for (const Unit& u : units)
        if (us >= u.mult && us % u.mult == 0)
            return std::to_string(us / u.mult) + u.suffix;
    return std::to_string(us) + "us";
}

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* text = std::getenv(name);
    if (!text)
        return fallback;
    std::size_t value = 0;
    if (!parse_size(text, value)) {
        log_warn() << name << "='" << text
                   << "' is not a valid size (digits with optional K/M/G "
                      "suffix); using default "
                   << fallback;
        return fallback;
    }
    return value;
}

std::uint64_t env_duration(const char* name, std::uint64_t fallback_us) {
    const char* text = std::getenv(name);
    if (!text)
        return fallback_us;
    std::uint64_t value = 0;
    if (!parse_duration(text, value)) {
        log_warn() << name << "='" << text
                   << "' is not a valid duration (digits with optional "
                      "us/ms/s/m/h suffix); using default "
                   << format_duration(fallback_us);
        return fallback_us;
    }
    return value;
}

} // namespace calib::util
