#include "recordbatch.hpp"

namespace calib {

std::size_t RecordBatch::create_column(id_t attribute) {
    if (attribute >= col_of_attr_.size())
        col_of_attr_.resize(attribute + 1, 0);
    const std::size_t ci = columns_.size();
    columns_.emplace_back();
    Column& c   = columns_.back();
    c.attribute = attribute;
    // pad history: rows built before this column existed lack the field
    c.values.resize(rows_);
    c.valid.assign(rows_, 0);
    col_of_attr_[attribute] = static_cast<std::uint32_t>(ci + 1);
    return ci;
}

void RecordBatch::demote_current_row() {
    // roll the fields pushed so far (in order) back out of the columns and
    // into a fresh overflow record
    overflow_.emplace_back();
    IdRecord& rec = overflow_.back();
    for (const std::uint32_t ci : cur_written_) {
        Column& c = columns_[ci];
        rec.append(c.attribute, c.values.back());
        c.values.pop_back();
        c.valid.pop_back();
    }
    cur_written_.clear();
    cur_overflow_ = true;
    cur_rec_      = &rec;
}

std::size_t RecordBatch::end_row() {
    assert(in_row_);
    in_row_ = false;
    const std::size_t row = rows_++;
    if (cur_overflow_) {
        if (overflow_of_row_.size() < rows_)
            overflow_of_row_.resize(rows_, 0);
        overflow_of_row_[row] = static_cast<std::uint32_t>(overflow_.size());
        cur_rec_              = nullptr;
    } else {
        cur_written_.clear();
    }
    // pad every column the row did not touch — all of them for an overflow
    // row (demote rolled its fields back out), so row slots stay aligned
    for (Column& c : columns_) {
        if (c.values.size() < rows_) {
            c.values.resize(rows_);
            c.valid.push_back(0);
        }
    }
    nentries_.push_back(cur_entries_);
    return cur_entries_;
}

void RecordBatch::append_record(const IdRecord& rec) {
    begin_row();
    for (const Entry& e : rec)
        append(e.attribute, e.value);
    end_row();
}

void RecordBatch::clear() {
    for (Column& c : columns_) {
        c.values.clear();
        c.valid.clear();
        c.appended.clear();
        c.is_append_target = false;
    }
    nentries_.clear();
    overflow_of_row_.clear();
    overflow_.clear();
    append_targets_.clear();
    rows_         = 0;
    in_row_       = false;
    cur_overflow_ = false;
    cur_rec_      = nullptr;
    cur_written_.clear();
}

std::size_t RecordBatch::append_target(id_t attribute) {
    assert(!in_row_);
    std::size_t ci;
    if (attribute < col_of_attr_.size() && col_of_attr_[attribute] != 0)
        ci = col_of_attr_[attribute] - 1;
    else
        ci = create_column(attribute);
    Column& c = columns_[ci];
    if (!c.is_append_target) {
        c.appended.assign(rows_, 0);
        c.is_append_target = true;
        append_targets_.push_back(static_cast<std::uint32_t>(ci));
    }
    return ci;
}

void RecordBatch::materialize(std::size_t row, IdRecord& out) const {
    out.clear();
    if (is_overflow(row)) {
        for (const Entry& e : overflow_record(row))
            out.append(e.attribute, e.value);
        return;
    }
    // pass 1: original fields in column (= stream field) order
    for (const Column& c : columns_) {
        if (!c.valid[row])
            continue;
        if (c.is_append_target && c.appended[row])
            continue;
        out.append(c.attribute, c.values[row]);
    }
    // pass 2: logically appended fields, in the order the append-target
    // stages ran (globals join, then LET targets in declaration order)
    for (const std::uint32_t ci : append_targets_) {
        const Column& c = columns_[ci];
        if (c.valid[row] && c.appended[row])
            out.append(c.attribute, c.values[row]);
    }
}

} // namespace calib
