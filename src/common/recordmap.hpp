// RecordMap: the offline representation of a record — attribute *names*
// mapped to values. File readers, the query engine, and report formatters
// operate on RecordMaps so that data from different runs (with different
// attribute-id assignments) can be processed uniformly.
#pragma once

#include "variant.hpp"

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace calib {

class RecordMap {
public:
    /// Attribute names are interned `const char*` so copies stay cheap.
    using value_type = std::pair<const char*, Variant>;

    RecordMap() = default;

    void append(std::string_view name, const Variant& value) {
        entries_.emplace_back(intern(name), value);
    }
    void append(const char* interned_name, const Variant& value) {
        entries_.emplace_back(interned_name, value);
    }

    /// Overwrite the first entry for \a name, or append.
    void set(std::string_view name, const Variant& value) {
        const char* n = intern(name);
        for (auto& [en, ev] : entries_)
            if (en == n) {
                ev = value;
                return;
            }
        entries_.emplace_back(n, value);
    }

    /// First entry for \a name, or nullptr (one scan for presence + value).
    const Variant* find(std::string_view name) const {
        for (const auto& [en, ev] : entries_)
            if (name_equal(name, en))
                return &ev;
        return nullptr;
    }

    /// First value for \a name, or an empty Variant.
    Variant get(std::string_view name) const {
        const Variant* v = find(name);
        return v ? *v : Variant();
    }

    bool contains(std::string_view name) const { return find(name) != nullptr; }

    void remove(std::string_view name) {
        std::erase_if(entries_,
                      [&](const value_type& e) { return name_equal(name, e.first); });
    }

    std::size_t size() const noexcept { return entries_.size(); }
    bool empty() const noexcept { return entries_.empty(); }
    void clear() noexcept { entries_.clear(); }
    void reserve(std::size_t n) { entries_.reserve(n); }

    auto begin() const noexcept { return entries_.begin(); }
    auto end() const noexcept { return entries_.end(); }
    auto begin() noexcept { return entries_.begin(); }
    auto end() noexcept { return entries_.end(); }
    const value_type& operator[](std::size_t i) const noexcept { return entries_[i]; }

    bool operator==(const RecordMap& rhs) const {
        if (entries_.size() != rhs.entries_.size())
            return false;
        for (const auto& [n, v] : entries_) {
            if (!(rhs.get(n) == v))
                return false;
        }
        return true;
    }

private:
    /// Stored names are interned, so a lookup name that is itself an
    /// interned pointer (the common case: attribute names flow around as
    /// `const char*`) matches on pointer identity without touching the
    /// characters. Same data pointer + NUL at name.size() ⇔ same content.
    static bool name_equal(std::string_view name, const char* interned) noexcept {
        return name.data() == interned ? interned[name.size()] == '\0'
                                       : name == interned;
    }

    std::vector<value_type> entries_;
};

} // namespace calib
