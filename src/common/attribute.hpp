// Attributes: the "key" half of the key:value data model.
//
// An attribute pairs a unique label with a value type and a set of
// properties that tell the runtime how to treat it (nested begin/end
// semantics, scope, whether it may appear in aggregation keys, ...).
// Attribute metadata lives in an AttributeRegistry; hot-path code refers
// to attributes by their dense integer id.
#pragma once

#include "types.hpp"
#include "variant.hpp"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace calib {

/// Attribute property flags (combinable).
namespace prop {
inline constexpr std::uint32_t none       = 0;
/// begin/end updates maintain a stack; snapshot sees the innermost value.
inline constexpr std::uint32_t nested     = 1u << 0;
/// set-only scalar (no stack); e.g. iteration counters, measurement values.
inline constexpr std::uint32_t as_value   = 1u << 1;
/// values of this attribute are metric-like and meaningful to aggregate.
inline constexpr std::uint32_t aggregatable = 1u << 2;
/// per-process scope (default is per-thread).
inline constexpr std::uint32_t scope_process = 1u << 3;
/// excluded from implicit "group by everything" aggregation keys.
inline constexpr std::uint32_t skip_key   = 1u << 4;
/// internal attribute, hidden from default report output.
inline constexpr std::uint32_t hidden     = 1u << 5;
} // namespace prop

/// Immutable attribute metadata. Cheap to copy (id + pointers).
class Attribute {
public:
    Attribute() = default;
    Attribute(id_t id, const char* name, Variant::Type type, std::uint32_t properties)
        : id_(id), name_(name), type_(type), prop_(properties) {}

    id_t id() const noexcept { return id_; }
    bool valid() const noexcept { return id_ != invalid_id; }

    /// Interned attribute label.
    const char* name() const noexcept { return name_; }
    std::string_view name_view() const noexcept {
        return name_ ? std::string_view(name_) : std::string_view();
    }

    Variant::Type type() const noexcept { return type_; }
    std::uint32_t properties() const noexcept { return prop_; }

    bool is_nested() const noexcept { return prop_ & prop::nested; }
    bool is_value() const noexcept { return prop_ & prop::as_value; }
    bool is_aggregatable() const noexcept { return prop_ & prop::aggregatable; }
    bool is_process_scope() const noexcept { return prop_ & prop::scope_process; }
    bool is_hidden() const noexcept { return prop_ & prop::hidden; }
    bool skip_in_key() const noexcept { return prop_ & prop::skip_key; }

    bool operator==(const Attribute& rhs) const noexcept { return id_ == rhs.id_; }

private:
    id_t id_            = invalid_id;
    const char* name_   = nullptr;
    Variant::Type type_ = Variant::Type::Empty;
    std::uint32_t prop_ = prop::none;
};

/// Thread-safe attribute dictionary. Creation is idempotent per name:
/// re-creating an existing attribute returns the original definition.
class AttributeRegistry {
public:
    AttributeRegistry();

    AttributeRegistry(const AttributeRegistry&)            = delete;
    AttributeRegistry& operator=(const AttributeRegistry&) = delete;

    /// Find or create an attribute. When the attribute already exists its
    /// original type/properties win (a warning-worthy mismatch is ignored,
    /// matching Caliper's first-definition-wins behaviour).
    Attribute create(std::string_view name, Variant::Type type,
                     std::uint32_t properties = prop::none);

    /// Look up by name; returns an invalid Attribute when absent.
    Attribute find(std::string_view name) const;

    /// Look up by id; returns an invalid Attribute when out of range.
    Attribute get(id_t id) const;

    /// Number of attributes defined.
    std::size_t size() const;

    /// Lock-free attribute count, used by hot paths to detect whether new
    /// attributes appeared since a cached name-resolution pass.
    std::size_t generation() const noexcept {
        return count_.load(std::memory_order_acquire);
    }

    /// Snapshot of all attributes (for writers / introspection).
    std::vector<Attribute> all() const;

private:
    mutable std::shared_mutex mutex_;
    std::vector<Attribute> attributes_;
    std::unordered_map<std::string_view, id_t> by_name_;
    std::atomic<std::size_t> count_{0};
};

} // namespace calib
