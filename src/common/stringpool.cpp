#include "stringpool.hpp"

#include <cstring>

namespace calib {

StringPool::StringPool()  = default;
StringPool::~StringPool() = default;

const char* StringPool::intern(std::string_view sv) {
    const std::uint64_t h = fnv1a(sv);

    std::lock_guard<std::mutex> lock(mutex_);

    auto it = index_.find(h);
    if (it != index_.end()) {
        for (const char* candidate : it->second) {
            if (length(candidate) == sv.size() &&
                std::memcmp(candidate, sv.data(), sv.size()) == 0)
                return candidate;
        }
    }
    return insert_locked(sv, h);
}

const char* StringPool::insert_locked(std::string_view sv, std::uint64_t h) {
    const std::size_t need = sizeof(Header) + sv.size() + 1;

    if (blocks_.empty() || block_fill_ + need > block_size) {
        const std::size_t sz = need > block_size ? need : block_size;
        blocks_.push_back(std::make_unique<char[]>(sz));
        block_fill_ = 0;
    }

    char* base = blocks_.back().get() + block_fill_;
    Header hdr{h, static_cast<std::uint32_t>(sv.size()), 0};
    std::memcpy(base, &hdr, sizeof(Header));
    char* payload = base + sizeof(Header);
    if (!sv.empty())
        std::memcpy(payload, sv.data(), sv.size());
    payload[sv.size()] = '\0';

    // Keep allocations 8-byte aligned for the next header.
    block_fill_ += (need + 7u) & ~std::size_t{7};
    payload_ += sv.size();

    index_[h].push_back(payload);
    return payload;
}

std::uint64_t StringPool::hash(const char* interned) noexcept {
    Header hdr;
    std::memcpy(&hdr, interned - sizeof(Header), sizeof(Header));
    return hdr.hash;
}

std::uint32_t StringPool::length(const char* interned) noexcept {
    Header hdr;
    std::memcpy(&hdr, interned - sizeof(Header), sizeof(Header));
    return hdr.len;
}

bool StringPool::contains(const char* ptr) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& block : blocks_) {
        const char* lo = block.get();
        const char* hi = lo + block_size;
        if (ptr >= lo && ptr < hi)
            return true;
    }
    return false;
}

std::size_t StringPool::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto& [h, chain] : index_)
        n += chain.size();
    return n;
}

std::size_t StringPool::payload_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return payload_;
}

StringPool& StringPool::global() {
    static StringPool pool;
    return pool;
}

} // namespace calib
