#include "log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace calib {

namespace {

std::atomic<int> g_verbosity{-1};
std::mutex g_output_mutex;

int init_verbosity() {
    if (const char* env = std::getenv("CALIB_LOG_VERBOSITY"))
        return std::atoi(env);
    return Log::Warn;
}

} // namespace

Log::~Log() {
    if (!enabled(level_))
        return;
    static const char* prefix[] = {"error", "warn", "info", "debug"};
    std::lock_guard<std::mutex> lock(g_output_mutex);
    std::fprintf(stderr, "calib [%s]: %s\n", prefix[level_], stream_.str().c_str());
}

bool Log::enabled(Level level) {
    return static_cast<int>(level) <= verbosity();
}

void Log::set_verbosity(int level) {
    g_verbosity.store(level, std::memory_order_relaxed);
}

int Log::verbosity() {
    int v = g_verbosity.load(std::memory_order_relaxed);
    if (v < 0) {
        v = init_verbosity();
        g_verbosity.store(v, std::memory_order_relaxed);
    }
    return v;
}

} // namespace calib
