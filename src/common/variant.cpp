#include "variant.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace calib {

double Variant::to_double() const noexcept {
    switch (type_) {
    case Type::Int:    return static_cast<double>(u_.i);
    case Type::UInt:   return static_cast<double>(u_.u);
    case Type::Double: return u_.d;
    case Type::Bool:   return u_.b ? 1.0 : 0.0;
    default:           return 0.0;
    }
}

std::int64_t Variant::to_int() const noexcept {
    switch (type_) {
    case Type::Int:    return u_.i;
    case Type::UInt:   return static_cast<std::int64_t>(u_.u);
    case Type::Double: return static_cast<std::int64_t>(u_.d);
    case Type::Bool:   return u_.b ? 1 : 0;
    default:           return 0;
    }
}

std::uint64_t Variant::to_uint() const noexcept {
    switch (type_) {
    case Type::Int:    return u_.i < 0 ? 0u : static_cast<std::uint64_t>(u_.i);
    case Type::UInt:   return u_.u;
    case Type::Double: return u_.d < 0 ? 0u : static_cast<std::uint64_t>(u_.d);
    case Type::Bool:   return u_.b ? 1u : 0u;
    default:           return 0;
    }
}

bool Variant::to_bool() const noexcept {
    switch (type_) {
    case Type::Bool:   return u_.b;
    case Type::Int:    return u_.i != 0;
    case Type::UInt:   return u_.u != 0;
    case Type::Double: return u_.d != 0.0;
    case Type::String: return StringPool::length(u_.s) > 0;
    default:           return false;
    }
}

std::string Variant::to_string() const {
    switch (type_) {
    case Type::Empty:  return {};
    case Type::Bool:   return u_.b ? "true" : "false";
    case Type::Int:    return std::to_string(u_.i);
    case Type::UInt:   return std::to_string(u_.u);
    case Type::String: return std::string(as_string());
    case Type::Double: {
        // %g with enough digits to round-trip typical measurement values,
        // but without trailing float noise in reports.
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", u_.d);
        return buf;
    }
    }
    return {};
}

Variant Variant::parse(Type type, std::string_view text) {
    switch (type) {
    case Type::Empty:
        return {};
    case Type::Bool:
        if (text == "true" || text == "1")
            return Variant(true);
        if (text == "false" || text == "0")
            return Variant(false);
        return {};
    case Type::Int: {
        std::int64_t v = 0;
        auto [p, ec] = std::from_chars(text.begin(), text.end(), v);
        return (ec == std::errc() && p == text.end()) ? Variant(static_cast<long long>(v))
                                                      : Variant();
    }
    case Type::UInt: {
        std::uint64_t v = 0;
        auto [p, ec] = std::from_chars(text.begin(), text.end(), v);
        return (ec == std::errc() && p == text.end())
                   ? Variant(static_cast<unsigned long long>(v))
                   : Variant();
    }
    case Type::Double: {
        // std::from_chars<double> is available in libstdc++ 11+; use strtod
        // for locale-independent-enough portability with a bounded copy.
        std::string tmp(text);
        char* end = nullptr;
        errno     = 0;
        double v  = std::strtod(tmp.c_str(), &end);
        if (end != tmp.c_str() + tmp.size() || errno == ERANGE)
            return {};
        return Variant(v);
    }
    case Type::String:
        return Variant(text);
    }
    return {};
}

Variant Variant::parse_guess(std::string_view text) {
    if (text.empty())
        return Variant(text);
    if (Variant v = parse(Type::Int, text); !v.empty())
        return v;
    if (Variant v = parse(Type::Double, text); !v.empty())
        return v;
    if (text == "true")
        return Variant(true);
    if (text == "false")
        return Variant(false);
    return Variant(text);
}

std::uint64_t Variant::hash() const noexcept {
    std::uint64_t payload;
    switch (type_) {
    case Type::Empty:  payload = 0; break;
    case Type::Bool:   payload = u_.b ? 1 : 0; break;
    case Type::String: payload = StringPool::hash(u_.s); break;
    default:           payload = u_.u; break;
    }
    return mix64(payload ^ (static_cast<std::uint64_t>(type_) << 56));
}

bool Variant::operator==(const Variant& rhs) const noexcept {
    if (type_ != rhs.type_)
        return false;
    switch (type_) {
    case Type::Empty:  return true;
    case Type::Bool:   return u_.b == rhs.u_.b;
    case Type::String: return u_.s == rhs.u_.s; // interned: pointer equality
    case Type::Double: return u_.d == rhs.u_.d;
    default:           return u_.u == rhs.u_.u;
    }
}

bool Variant::operator<(const Variant& rhs) const noexcept {
    return compare(rhs) < 0;
}

int Variant::compare(const Variant& rhs) const noexcept {
    const bool ln = is_numeric() || is_bool();
    const bool rn = rhs.is_numeric() || rhs.is_bool();
    if (ln && rn) {
        // Compare integers exactly when possible, else via double.
        if ((type_ == Type::Int || type_ == Type::Bool) &&
            (rhs.type_ == Type::Int || rhs.type_ == Type::Bool)) {
            const std::int64_t a = to_int(), b = rhs.to_int();
            return a < b ? -1 : a > b ? 1 : 0;
        }
        if (type_ == Type::UInt && rhs.type_ == Type::UInt) {
            const std::uint64_t a = u_.u, b = rhs.u_.u;
            return a < b ? -1 : a > b ? 1 : 0;
        }
        const double a = to_double(), b = rhs.to_double();
        return a < b ? -1 : a > b ? 1 : 0;
    }
    if (type_ == Type::String && rhs.type_ == Type::String) {
        if (u_.s == rhs.u_.s)
            return 0;
        return std::strcmp(u_.s, rhs.u_.s);
    }
    const auto a = static_cast<int>(type_), b = static_cast<int>(rhs.type_);
    return a < b ? -1 : a > b ? 1 : 0;
}

const char* Variant::type_name(Type t) noexcept {
    switch (t) {
    case Type::Empty:  return "empty";
    case Type::Bool:   return "bool";
    case Type::Int:    return "int";
    case Type::UInt:   return "uint";
    case Type::Double: return "double";
    case Type::String: return "string";
    }
    return "?";
}

Variant::Type Variant::type_from_name(std::string_view name) noexcept {
    if (name == "bool")   return Type::Bool;
    if (name == "int")    return Type::Int;
    if (name == "uint")   return Type::UInt;
    if (name == "double") return Type::Double;
    if (name == "string") return Type::String;
    return Type::Empty;
}

} // namespace calib
