#include "variant.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace calib {

double Variant::to_double() const noexcept {
    switch (type_) {
    case Type::Int:    return static_cast<double>(u_.i);
    case Type::UInt:   return static_cast<double>(u_.u);
    case Type::Double: return u_.d;
    case Type::Bool:   return u_.b ? 1.0 : 0.0;
    default:           return 0.0;
    }
}

std::int64_t Variant::to_int() const noexcept {
    switch (type_) {
    case Type::Int:    return u_.i;
    case Type::UInt:   return static_cast<std::int64_t>(u_.u);
    case Type::Double: return static_cast<std::int64_t>(u_.d);
    case Type::Bool:   return u_.b ? 1 : 0;
    default:           return 0;
    }
}

std::uint64_t Variant::to_uint() const noexcept {
    switch (type_) {
    case Type::Int:    return u_.i < 0 ? 0u : static_cast<std::uint64_t>(u_.i);
    case Type::UInt:   return u_.u;
    case Type::Double: return u_.d < 0 ? 0u : static_cast<std::uint64_t>(u_.d);
    case Type::Bool:   return u_.b ? 1u : 0u;
    default:           return 0;
    }
}

bool Variant::to_bool() const noexcept {
    switch (type_) {
    case Type::Bool:   return u_.b;
    case Type::Int:    return u_.i != 0;
    case Type::UInt:   return u_.u != 0;
    case Type::Double: return u_.d != 0.0;
    case Type::String: return StringPool::length(u_.s) > 0;
    default:           return false;
    }
}

std::string Variant::to_string() const {
    switch (type_) {
    case Type::Empty:  return {};
    case Type::Bool:   return u_.b ? "true" : "false";
    case Type::Int:    return std::to_string(u_.i);
    case Type::UInt:   return std::to_string(u_.u);
    case Type::String: return std::string(as_string());
    case Type::Double: {
        // %g with enough digits to round-trip typical measurement values,
        // but without trailing float noise in reports.
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", u_.d);
        return buf;
    }
    }
    return {};
}

std::string Variant::to_repr() const {
    if (type_ != Type::Double)
        return to_string();
    // Shortest decimal form that parses back to the identical double
    // (std::to_chars); "%.12g" display rendering drops bits beyond 12
    // significant digits, which is fine for reports but not for streams
    // that are read back (.cali files, JSON interchange).
    char buf[40];
    auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), u_.d);
    if (ec != std::errc())
        return to_string();
    return std::string(buf, p);
}

Variant Variant::parse(Type type, std::string_view text) {
    switch (type) {
    case Type::Empty:
        return {};
    case Type::Bool:
        if (text == "true" || text == "1")
            return Variant(true);
        if (text == "false" || text == "0")
            return Variant(false);
        return {};
    case Type::Int: {
        std::int64_t v = 0;
        auto [p, ec] = std::from_chars(text.begin(), text.end(), v);
        return (ec == std::errc() && p == text.end()) ? Variant(static_cast<long long>(v))
                                                      : Variant();
    }
    case Type::UInt: {
        std::uint64_t v = 0;
        auto [p, ec] = std::from_chars(text.begin(), text.end(), v);
        return (ec == std::errc() && p == text.end())
                   ? Variant(static_cast<unsigned long long>(v))
                   : Variant();
    }
    case Type::Double: {
        // std::from_chars<double> is available in libstdc++ 11+; use strtod
        // for locale-independent-enough portability with a bounded copy.
        std::string tmp(text);
        char* end = nullptr;
        errno     = 0;
        double v  = std::strtod(tmp.c_str(), &end);
        if (end != tmp.c_str() + tmp.size())
            return {};
        // ERANGE covers overflow and underflow alike. Underflow still
        // yields the correctly rounded subnormal (e.g. "5e-324") — accept
        // it; only overflow, which pins to ±HUGE_VAL, has no value.
        if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))
            return {};
        return Variant(v);
    }
    case Type::String:
        return Variant(text);
    }
    return {};
}

Variant Variant::parse_guess(std::string_view text) {
    if (text.empty())
        return Variant(text);
    if (Variant v = parse(Type::Int, text); !v.empty())
        return v;
    // integer literals above INT64_MAX stay exact as UInt instead of losing
    // low bits through the double fallback
    if (Variant v = parse(Type::UInt, text); !v.empty())
        return v;
    if (Variant v = parse(Type::Double, text); !v.empty())
        return v;
    if (text == "true")
        return Variant(true);
    if (text == "false")
        return Variant(false);
    return Variant(text);
}

std::uint64_t Variant::hash() const noexcept {
    std::uint64_t payload;
    switch (type_) {
    case Type::Empty:  payload = 0; break;
    case Type::Bool:   payload = u_.b ? 1 : 0; break;
    case Type::String: payload = StringPool::hash(u_.s); break;
    default:           payload = u_.u; break;
    }
    return mix64(payload ^ (static_cast<std::uint64_t>(type_) << 56));
}

bool Variant::operator==(const Variant& rhs) const noexcept {
    if (type_ != rhs.type_)
        return false;
    switch (type_) {
    case Type::Empty:  return true;
    case Type::Bool:   return u_.b == rhs.u_.b;
    case Type::String: return u_.s == rhs.u_.s; // interned: pointer equality
    // Doubles compare by bit pattern, matching hash(): NaN is identical to
    // itself (one NaN group, not one per record) and +0.0/-0.0 are distinct
    // identities (they hash and format differently). Numeric *ordering*
    // (compare(), WHERE) still treats +0.0 and -0.0 as equal.
    default:           return u_.u == rhs.u_.u;
    }
}

bool Variant::operator<(const Variant& rhs) const noexcept {
    return compare(rhs) < 0;
}

namespace {

int cmp3(std::int64_t a, std::int64_t b) noexcept {
    return a < b ? -1 : a > b ? 1 : 0;
}
int cmp3u(std::uint64_t a, std::uint64_t b) noexcept {
    return a < b ? -1 : a > b ? 1 : 0;
}

/// Exact int64 vs finite/infinite double comparison (no NaN): never rounds
/// the integer through double, so values above 2^53 compare correctly.
int cmp_int_double(std::int64_t i, double d) noexcept {
    if (d >= 0x1p63) // 2^63: every int64 is smaller (also +inf)
        return -1;
    if (d < -0x1p63) // below INT64_MIN (also -inf)
        return 1;
    // |d| <= 2^63 here, so floor(d) is exactly representable in int64
    const double fl       = std::floor(d);
    const std::int64_t di = static_cast<std::int64_t>(fl);
    if (i != di)
        return i < di ? -1 : 1;
    return d > fl ? -1 : 0; // equal integer parts: the fraction decides
}

/// Exact uint64 vs finite/infinite double comparison (no NaN).
int cmp_uint_double(std::uint64_t u, double d) noexcept {
    if (d >= 0x1p64) // 2^64: every uint64 is smaller (also +inf)
        return -1;
    if (d < 0.0)
        return 1;
    const double fl        = std::floor(d);
    const std::uint64_t du = static_cast<std::uint64_t>(fl);
    if (u != du)
        return u < du ? -1 : 1;
    return d > fl ? -1 : 0;
}

/// Exact int64 vs uint64 comparison (no wrap through to_int()).
int cmp_int_uint(std::int64_t i, std::uint64_t u) noexcept {
    if (i < 0)
        return -1;
    return cmp3u(static_cast<std::uint64_t>(i), u);
}

} // namespace

int Variant::compare(const Variant& rhs) const noexcept {
    const bool ln = is_numeric() || is_bool();
    const bool rn = rhs.is_numeric() || rhs.is_bool();
    if (ln && rn) {
        // NaN total order: NaN compares equal to itself and after every
        // other numeric value ("NaN sorts last"), so min/max selection and
        // std::stable_sort comparators see a strict weak ordering.
        const bool lnan = type_ == Type::Double && std::isnan(u_.d);
        const bool rnan = rhs.type_ == Type::Double && std::isnan(rhs.u_.d);
        if (lnan || rnan)
            return lnan == rnan ? 0 : (lnan ? 1 : -1);
        // Cross-type integer comparisons are exact: never coerced through
        // double (lossy above 2^53) or via to_int() (wraps UInt > INT64_MAX).
        const bool li = type_ == Type::Int || type_ == Type::Bool;
        const bool ri = rhs.type_ == Type::Int || rhs.type_ == Type::Bool;
        if (li && ri)
            return cmp3(to_int(), rhs.to_int());
        if (type_ == Type::UInt && rhs.type_ == Type::UInt)
            return cmp3u(u_.u, rhs.u_.u);
        if (li && rhs.type_ == Type::UInt)
            return cmp_int_uint(to_int(), rhs.u_.u);
        if (type_ == Type::UInt && ri)
            return -cmp_int_uint(rhs.to_int(), u_.u);
        if (li) // vs Double
            return cmp_int_double(to_int(), rhs.u_.d);
        if (ri) // Double vs int
            return -cmp_int_double(rhs.to_int(), u_.d);
        if (type_ == Type::UInt) // vs Double
            return cmp_uint_double(u_.u, rhs.u_.d);
        if (rhs.type_ == Type::UInt) // Double vs uint
            return -cmp_uint_double(rhs.u_.u, u_.d);
        const double a = u_.d, b = rhs.u_.d;
        return a < b ? -1 : a > b ? 1 : 0;
    }
    if (type_ == Type::String && rhs.type_ == Type::String) {
        if (u_.s == rhs.u_.s)
            return 0;
        return std::strcmp(u_.s, rhs.u_.s);
    }
    const auto a = static_cast<int>(type_), b = static_cast<int>(rhs.type_);
    return a < b ? -1 : a > b ? 1 : 0;
}

const char* Variant::type_name(Type t) noexcept {
    switch (t) {
    case Type::Empty:  return "empty";
    case Type::Bool:   return "bool";
    case Type::Int:    return "int";
    case Type::UInt:   return "uint";
    case Type::Double: return "double";
    case Type::String: return "string";
    }
    return "?";
}

Variant::Type Variant::type_from_name(std::string_view name) noexcept {
    if (name == "bool")   return Type::Bool;
    if (name == "int")    return Type::Int;
    if (name == "uint")   return Type::UInt;
    if (name == "double") return Type::Double;
    if (name == "string") return Type::String;
    return Type::Empty;
}

} // namespace calib
