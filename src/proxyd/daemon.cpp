#include "daemon.hpp"

#include "../io/caliwriter.hpp"
#include "../obs/metrics.hpp"
#include "../query/calql.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <chrono>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

namespace calib::proxyd {

namespace {

obs::Counter proxyd_connections("proxyd.connections");
obs::Counter proxyd_shed_connections("proxyd.shed_connections");
obs::Counter proxyd_http_requests("proxyd.http_requests");

constexpr std::size_t kRecvChunk = 64 * 1024;

/// Per-connection read passes per event-loop iteration; bounds how long
/// one busy connection can hold the loop before others get a turn.
constexpr int kMaxRecvPassesPerEvent = 8;

/// Prometheus metric-name characters: [a-zA-Z0-9_:]; we map the rest to '_'.
std::string sanitize_metric(std::string_view name) {
    std::string out;
    out.reserve(name.size());
    for (const char c : name)
        out.push_back((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                              (c >= '0' && c <= '9') || c == '_' || c == ':'
                          ? c
                          : '_');
    if (!out.empty() && out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

/// Prometheus label-name characters: [a-zA-Z0-9_] — no ':', unlike
/// metric names.
std::string sanitize_label(std::string_view name) {
    std::string out;
    out.reserve(name.size());
    for (const char c : name)
        out.push_back((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                              (c >= '0' && c <= '9') || c == '_'
                          ? c
                          : '_');
    if (!out.empty() && out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

/// Prometheus label values escape backslash, quote, and newline.
std::string escape_label(std::string_view value) {
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        if (c == '\\' || c == '"')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

std::uint64_t steady_now_us() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string format_number(const Variant& v) {
    switch (v.type()) {
    case Variant::Type::Int:
        return std::to_string(v.to_int());
    case Variant::Type::UInt:
        return std::to_string(v.to_uint());
    default: {
        std::ostringstream os;
        os << v.to_double();
        return os.str();
    }
    }
}

} // namespace

// ---------------------------------------------------------------- Connection

struct ProxyDaemon::Connection {
    enum class Kind { Ingest, Http };

    int fd = -1;
    Kind kind = Kind::Ingest;
    net::Socket socket;
    std::unique_ptr<IngestSession> session; // Ingest only

    std::vector<std::byte> tx;
    std::size_t tx_pos  = 0;
    bool close_after_tx = false;
    bool shed           = false; ///< outbound bound exceeded; drop it
    std::uint32_t events = 0;    ///< currently registered epoll events

    std::string http_req; // Http only: request bytes until header end

    std::size_t tx_pending() const noexcept { return tx.size() - tx_pos; }
};

// ---------------------------------------------------------------- lifecycle

ProxyDaemon::ProxyDaemon(DaemonOptions opts) : opts_(std::move(opts)) {}

ProxyDaemon::~ProxyDaemon() {
    conns_.clear();
    if (epoll_fd_ >= 0)
        ::close(epoll_fd_);
    if (stop_fd_ >= 0)
        ::close(stop_fd_);
    if (timer_fd_ >= 0)
        ::close(timer_fd_);
    ingest_listener_.close();
    tcp_listener_.close();
    http_listener_.close();
    if (!unix_path_.empty())
        ::unlink(unix_path_.c_str());
}

void ProxyDaemon::start() {
    if (opts_.listen.empty())
        throw std::runtime_error("calib-proxyd: no listen address");
    if (opts_.slide_us > 0 && opts_.window_us == 0)
        throw std::runtime_error("calib-proxyd: --slide without --window");
    if (opts_.slide_us > opts_.window_us)
        throw std::runtime_error(
            "calib-proxyd: slide is larger than the window duration");

    // fail fast on a bad daemon-global aggregate clause, before any
    // client's hello can trip over it
    if (!opts_.aggregate.empty()) {
        const QuerySpec spec = parse_calql(opts_.aggregate);
        if (!spec.has_aggregation())
            throw std::runtime_error("aggregate clause '" + opts_.aggregate +
                                     "' has no AGGREGATE/GROUP BY");
    }

    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0)
        throw std::runtime_error(std::string("epoll_create1: ") +
                                 std::strerror(errno));
    stop_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (stop_fd_ < 0)
        throw std::runtime_error(std::string("eventfd: ") + std::strerror(errno));
    timer_fd_ = timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
    if (timer_fd_ < 0)
        throw std::runtime_error(std::string("timerfd_create: ") +
                                 std::strerror(errno));

    const auto watch = [this](int fd) {
        epoll_event ev{};
        ev.events  = EPOLLIN;
        ev.data.fd = fd;
        if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
            throw std::runtime_error(std::string("epoll_ctl(add): ") +
                                     std::strerror(errno));
    };

    ingest_listener_ = net::listen_on(opts_.listen, &ingest_addr_);
    ingest_listener_.set_nonblocking(true);
    if (net::is_unix_address(opts_.listen))
        unix_path_ = net::unix_socket_path(opts_.listen);
    watch(ingest_listener_.fd());

    if (!opts_.listen_tcp.empty()) {
        tcp_listener_ = net::listen_on(opts_.listen_tcp, &tcp_addr_);
        tcp_listener_.set_nonblocking(true);
        watch(tcp_listener_.fd());
    }
    if (!opts_.http.empty()) {
        http_listener_ = net::listen_on(opts_.http, &http_addr_);
        http_listener_.set_nonblocking(true);
        watch(http_listener_.fd());
    }
    watch(stop_fd_);
    watch(timer_fd_);
    arm_timer(); // first slide tick for windowed channels
}

void ProxyDaemon::stop() noexcept {
    if (stop_fd_ >= 0) {
        const std::uint64_t one = 1;
        // async-signal-safe: a single write on an eventfd
        [[maybe_unused]] const ssize_t n = ::write(stop_fd_, &one, sizeof(one));
    }
}

void ProxyDaemon::begin_drain() {
    if (draining_)
        return;
    draining_ = true;
    // a negative timeout must not wrap into a far-future deadline
    const std::uint64_t drain_ms =
        opts_.drain_timeout_ms > 0
            ? static_cast<std::uint64_t>(opts_.drain_timeout_ms)
            : 0;
    deadline_ = obs::now_ns() + drain_ms * 1000000ull;
    const auto unwatch = [this](net::Socket& s) {
        if (s.valid()) {
            epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, s.fd(), nullptr);
            s.close();
        }
    };
    unwatch(ingest_listener_);
    unwatch(tcp_listener_);
    unwatch(http_listener_);
    if (!unix_path_.empty()) {
        ::unlink(unix_path_.c_str());
        unix_path_.clear();
    }
    arm_timer(); // the drain deadline is a timer deadline now
}

void ProxyDaemon::arm_timer() {
    if (timer_fd_ < 0)
        return;
    std::uint64_t delay_ns = 0; // 0 = disarm
    bool armed             = false;

    if (opts_.window_us > 0) {
        // next slide-tick boundary in the channel clock's timeline (the
        // injected test clock and the real timerfd clock tick at the same
        // rate for our purposes: the relative delay is what matters)
        const std::uint64_t slide =
            opts_.slide_us > 0 ? opts_.slide_us : opts_.window_us;
        const std::uint64_t now_us =
            opts_.clock ? opts_.clock() : steady_now_us();
        const std::uint64_t next_us = (now_us / slide + 1) * slide;
        delay_ns                    = (next_us - now_us) * 1000ull;
        armed                       = true;
    }
    if (draining_) {
        const std::uint64_t now_ns = obs::now_ns();
        const std::uint64_t drain_ns =
            deadline_ > now_ns ? deadline_ - now_ns : 1;
        if (!armed || drain_ns < delay_ns)
            delay_ns = drain_ns;
        armed = true;
    }

    itimerspec its{};
    if (armed) {
        if (delay_ns == 0)
            delay_ns = 1; // it_value = 0 would disarm instead of firing
        its.it_value.tv_sec  = static_cast<time_t>(delay_ns / 1000000000ull);
        its.it_value.tv_nsec = static_cast<long>(delay_ns % 1000000000ull);
    }
    timerfd_settime(timer_fd_, 0, &its, nullptr);
}

bool ProxyDaemon::on_timer() {
    for (auto& [name, ch] : channels_)
        ch->retire_expired();
    if (draining_ && obs::now_ns() >= deadline_)
        return false;
    arm_timer();
    return true;
}

void ProxyDaemon::run() {
    epoll_event events[64];
    bool deadline_passed = false;

    while (!deadline_passed && !(draining_ && conns_.empty())) {
        // one timerfd carries every time-based wakeup (slide ticks for
        // pane retirement, the drain deadline), so the wait itself can
        // block indefinitely without stalling either
        const int n = epoll_wait(epoll_fd_, events, 64, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error(std::string("epoll_wait: ") +
                                     std::strerror(errno));
        }

        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == stop_fd_) {
                std::uint64_t drained;
                while (::read(stop_fd_, &drained, sizeof(drained)) > 0)
                    ;
                begin_drain();
                continue;
            }
            if (fd == timer_fd_) {
                std::uint64_t expirations;
                while (::read(timer_fd_, &expirations, sizeof(expirations)) > 0)
                    ;
                if (!on_timer())
                    deadline_passed = true;
                continue;
            }
            if (fd == ingest_listener_.fd() || fd == tcp_listener_.fd() ||
                fd == http_listener_.fd()) {
                handle_listener(fd);
                continue;
            }
            const auto it = conns_.find(fd);
            if (it != conns_.end())
                handle_connection(*it->second, events[i].events);
        }
    }

    // drain deadline passed: force-close whatever is left
    while (!conns_.empty())
        close_connection(*conns_.begin()->second);
}

// -------------------------------------------------------------- connections

void ProxyDaemon::handle_listener(int fd) {
    const bool is_http = fd == http_listener_.fd();
    for (;;) {
        const int cfd = accept4(fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (cfd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
                return;
            return; // transient accept failure; the listener stays armed
        }

        auto conn    = std::make_unique<Connection>();
        conn->fd     = cfd;
        conn->socket = net::Socket(cfd);
        conn->kind   = is_http ? Connection::Kind::Http : Connection::Kind::Ingest;

        if (!is_http) {
            Connection* raw = conn.get();
            IngestSession::Hooks hooks;
            hooks.open_channel = [this](const std::string& name, bool create) {
                return channel(name, create);
            };
            hooks.respond = [this, raw](std::uint8_t status,
                                        std::string_view body) {
                queue_result(*raw, status, body);
            };
            hooks.on_query = [this, raw](std::string_view calql) {
                ProxyChannel* ch = raw->session->channel();
                if (!ch) {
                    queue_result(*raw, 1, "no channel joined");
                    return;
                }
                bool ok                = false;
                const std::string body = ch->answer(calql, &ok);
                queue_result(*raw, ok ? 0 : 1, body);
            };
            conn->session =
                std::make_unique<IngestSession>(std::move(hooks),
                                                opts_.max_frame_bytes);
        }

        epoll_event ev{};
        ev.events  = EPOLLIN;
        ev.data.fd = cfd;
        if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev) != 0)
            continue; // drops the connection (socket closes with conn)
        conn->events = EPOLLIN;

        ++connections_total_;
        proxyd_connections.add();
        conns_.emplace(cfd, std::move(conn));
    }
}

void ProxyDaemon::handle_connection(Connection& conn, std::uint32_t events) {
    if (events & EPOLLOUT) {
        if (!flush_tx(conn))
            return;
        if (conn.close_after_tx && conn.tx_pending() == 0) {
            close_connection(conn);
            return;
        }
    }
    if (!(events & EPOLLIN)) {
        // hup/err without readable data: nothing left to drain
        if (events & (EPOLLHUP | EPOLLERR))
            close_connection(conn);
        return;
    }

    char buf[kRecvChunk];
    // bounded reads per event-loop pass: EPOLLIN is level-triggered and
    // stays armed, so a client that streams faster than the daemon folds
    // round-robins with other connections (and the drain-deadline check)
    // instead of monopolizing the single-threaded loop
    for (int pass = 0; pass < kMaxRecvPassesPerEvent; ++pass) {
        const ssize_t n = conn.socket.recv_some(buf, sizeof(buf));
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                update_events(conn);
                return;
            }
            close_connection(conn);
            return;
        }
        if (n == 0) {
            // orderly EOF; every complete frame was already processed.
            // flush_tx may itself close the connection on a send error —
            // it returns false then, and conn is already destroyed
            if (!flush_tx(conn))
                return;
            close_connection(conn);
            return;
        }

        if (conn.kind == Connection::Kind::Http) {
            conn.http_req.append(buf, static_cast<std::size_t>(n));
            if (conn.http_req.size() > 16 * 1024) {
                close_connection(conn); // not a plausible scrape request
                return;
            }
            if (conn.http_req.find("\r\n\r\n") != std::string::npos) {
                handle_http_request(conn);
                if (!flush_tx(conn))
                    return;
                if (conn.tx_pending() == 0) {
                    close_connection(conn);
                    return;
                }
                conn.close_after_tx = true;
                update_events(conn);
                return;
            }
            continue;
        }

        const IngestSession::Status st =
            conn.session->feed(buf, static_cast<std::size_t>(n));
        if (conn.shed) {
            close_connection(conn);
            return;
        }
        if (!flush_tx(conn))
            return;
        if (st != IngestSession::Status::Ok) {
            if (conn.tx_pending() == 0) {
                close_connection(conn);
            } else {
                conn.close_after_tx = true;
                update_events(conn);
            }
            return;
        }
    }
}

void ProxyDaemon::handle_http_request(Connection& conn) {
    ++http_requests_;
    proxyd_http_requests.add();

    std::string_view req = conn.http_req;
    std::string_view path;
    if (req.rfind("GET ", 0) == 0) {
        const std::size_t sp = req.find(' ', 4);
        if (sp != std::string_view::npos)
            path = req.substr(4, sp - 4);
    }

    std::string body;
    const char* status = "200 OK";
    if (path == "/metrics" || path == "/") {
        body = scrape_text();
    } else if (path == "/healthz") {
        body = "ok\n";
    } else {
        status = path.empty() ? "400 Bad Request" : "404 Not Found";
        body   = "calib-proxyd: no such endpoint\n";
    }

    std::string head = "HTTP/1.0 ";
    head += status;
    head += "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8"
            "\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
    queue_bytes(conn, head.data(), head.size());
    queue_bytes(conn, body.data(), body.size());
}

void ProxyDaemon::queue_result(Connection& conn, std::uint8_t status,
                               std::string_view body) {
    std::vector<std::byte> frame;
    net::append_result(frame, status, body);
    queue_bytes(conn, frame.data(), frame.size());
}

void ProxyDaemon::queue_bytes(Connection& conn, const void* data,
                              std::size_t len) {
    if (conn.shed)
        return;
    if (conn.tx_pending() + len > opts_.max_tx_bytes) {
        // slow reader: it stopped draining results; shed it rather than
        // buffer without bound
        conn.shed = true;
        ++shed_connections_;
        proxyd_shed_connections.add();
        return;
    }
    if (conn.tx_pos > 0 && conn.tx_pos == conn.tx.size()) {
        conn.tx.clear();
        conn.tx_pos = 0;
    }
    const auto* p = static_cast<const std::byte*>(data);
    conn.tx.insert(conn.tx.end(), p, p + len);
}

bool ProxyDaemon::flush_tx(Connection& conn) {
    while (conn.tx_pending() > 0) {
        const ssize_t n = ::send(conn.socket.fd(), conn.tx.data() + conn.tx_pos,
                                 conn.tx_pending(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                update_events(conn);
                return true;
            }
            close_connection(conn);
            return false;
        }
        conn.tx_pos += static_cast<std::size_t>(n);
    }
    conn.tx.clear();
    conn.tx_pos = 0;
    update_events(conn);
    return true;
}

void ProxyDaemon::update_events(Connection& conn) {
    std::uint32_t want = conn.close_after_tx ? 0 : EPOLLIN;
    if (conn.tx_pending() > 0)
        want |= EPOLLOUT;
    if (want == conn.events)
        return;
    epoll_event ev{};
    ev.events  = want;
    ev.data.fd = conn.fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0)
        conn.events = want;
}

void ProxyDaemon::close_connection(Connection& conn) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    const int fd = conn.fd;
    conns_.erase(fd); // destroys conn; the socket closes here
}

// ------------------------------------------------------------------ channels

ProxyChannel* ProxyDaemon::channel(const std::string& name, bool create) {
    const auto it = channels_.find(name);
    if (it != channels_.end())
        return it->second.get();
    if (!create)
        return nullptr; // query-only hello against a channel nobody fed
    try {
        WindowSpec window;
        window.duration_us = opts_.window_us;
        window.slide_us    = opts_.slide_us;
        auto ch = std::make_unique<ProxyChannel>(name, opts_.aggregate,
                                                 opts_.prealloc, window,
                                                 opts_.clock);
        return channels_.emplace(name, std::move(ch)).first->second.get();
    } catch (const std::exception&) {
        return nullptr; // rejects the client's hello
    }
}

std::vector<const ProxyChannel*> ProxyDaemon::channels() const {
    std::vector<const ProxyChannel*> out;
    out.reserve(channels_.size());
    for (const auto& [name, ch] : channels_)
        out.push_back(ch.get());
    return out;
}

ProxyDaemon::Stats ProxyDaemon::stats() const {
    Stats s;
    s.connections_total = connections_total_;
    s.shed_connections  = shed_connections_;
    s.http_requests     = http_requests_;
    for (const auto& [name, ch] : channels_)
        s.records += ch->records();
    return s;
}

// -------------------------------------------------------------------- scrape

std::string ProxyDaemon::scrape_text() const {
    std::ostringstream os;
    os << "# calib-proxyd metrics (Prometheus text exposition)\n";

    for (const obs::Sample& s : obs::MetricsRegistry::instance().snapshot()) {
        const std::string name = "calib_" + sanitize_metric(s.name);
        switch (s.kind) {
        case obs::Kind::Counter:
            os << "# TYPE " << name << "_total counter\n"
               << name << "_total " << s.value << "\n";
            break;
        case obs::Kind::Gauge:
            os << "# TYPE " << name << " gauge\n" << name << " " << s.value << "\n";
            break;
        case obs::Kind::Timer:
            os << "# TYPE " << name << "_seconds_count counter\n"
               << name << "_seconds_count " << s.count << "\n"
               << "# TYPE " << name << "_seconds_sum counter\n"
               << name << "_seconds_sum " << static_cast<double>(s.total_ns) / 1e9
               << "\n";
            break;
        case obs::Kind::Histogram:
            // proper Prometheus histogram series: cumulative _bucket
            // counts with `le` bounds (the log2 bucket upper bounds),
            // a catch-all +Inf bucket, then _sum and _count
            os << "# TYPE " << name << " histogram\n";
            for (const auto& [le, cumulative] : s.buckets)
                os << name << "_bucket{le=\"" << le << "\"} " << cumulative
                   << "\n";
            os << name << "_bucket{le=\"+Inf\"} " << s.count << "\n"
               << name << "_sum " << s.total_ns << "\n"
               << name << "_count " << s.count << "\n";
            break;
        }
    }

    for (const auto& [cname, ch] : channels_) {
        const std::string label = "{channel=\"" + escape_label(cname) + "\"}";
        os << "calib_channel_records_total" << label << " " << ch->records()
           << "\n"
           << "calib_channel_groups" << label << " " << ch->groups() << "\n"
           << "calib_channel_bytes" << label << " " << ch->bytes() << "\n"
           << "calib_channel_clients_total" << label << " " << ch->clients_total
           << "\n";
        if (ch->windowed()) {
            // per-window gauges: the live pane ring's shape and contents
            os << "calib_channel_window_seconds" << label << " "
               << static_cast<double>(ch->window().duration_us) / 1e6 << "\n"
               << "calib_channel_window_slide_seconds" << label << " "
               << static_cast<double>(ch->window().slide()) / 1e6 << "\n"
               << "calib_channel_window_live_panes" << label << " "
               << ch->live_panes() << "\n"
               << "calib_channel_window_live_records" << label << " "
               << ch->live_records() << "\n"
               << "calib_channel_window_retired_panes_total" << label << " "
               << ch->retired_panes() << "\n";
        }
    }

    // channel contents as labeled series: string-valued entries become
    // labels, numeric entries become one series each
    std::size_t series  = 0;
    std::size_t omitted = 0;
    for (const auto& [cname, ch] : channels_) {
        for (const ProxyChannel::Row& row : ch->rows()) {
            std::string labels = "channel=\"" + escape_label(cname) + "\"";
            // distinct attribute names may sanitize to the same label name
            // ('a.b' vs 'a_b'); a duplicate label within one series makes
            // Prometheus reject the whole scrape, so suffix collisions
            std::vector<std::string> used{"channel"};
            for (const auto& [attr, value] : row.record) {
                if (value.is_numeric())
                    continue;
                std::string lname = sanitize_label(attr);
                for (int suffix = 2;
                     std::find(used.begin(), used.end(), lname) != used.end();
                     ++suffix)
                    lname = sanitize_label(attr) + "_" + std::to_string(suffix);
                used.push_back(lname);
                labels += "," + lname + "=\"" +
                          escape_label(value.to_string()) + "\"";
            }
            for (const auto& [attr, value] : row.record) {
                if (!value.is_numeric())
                    continue;
                if (series >= opts_.scrape_max_series) {
                    ++omitted;
                    continue;
                }
                ++series;
                os << "calib_data_" << sanitize_metric(attr) << "{" << labels
                   << "} " << format_number(value) << "\n";
            }
            if (ch->exact()) {
                if (series >= opts_.scrape_max_series) {
                    ++omitted;
                } else {
                    ++series;
                    os << "calib_data_count{" << labels << "} " << row.weight
                       << "\n";
                }
            }
        }
    }
    if (omitted > 0)
        os << "# calib: truncated, omitted " << omitted
           << " data series (scrape_max_series=" << opts_.scrape_max_series
           << ")\n";
    return os.str();
}

// --------------------------------------------------------------- final flush

void ProxyDaemon::write_flush_files(const std::string& pattern) const {
    for (const auto& [cname, ch] : channels_) {
        std::string path = pattern;
        const std::size_t pos = path.find("%c");
        if (pos != std::string::npos)
            path.replace(pos, 2, cname);

        std::ofstream os(path, std::ios::binary);
        if (!os)
            throw std::runtime_error("cannot write " + path);
        CaliWriter writer(os);
        for (const ProxyChannel::Row& row : ch->rows()) {
            if (!ch->exact()) {
                writer.write_record(row.record);
                continue;
            }
            RecordMap rm = row.record;
            const Variant* have = rm.find("count");
            if (!have) {
                rm.append("count", Variant(row.weight));
            } else if (have->is_numeric()) {
                // the record already collapses N snapshots (aggregate-
                // service output); seen `weight` times it stands for
                // N*weight — merge rather than emit a duplicate column
                rm.set("count", Variant(have->to_uint() * row.weight));
            } else {
                // a non-numeric count cannot merge; replay verbatim
                for (std::uint64_t i = 1; i < row.weight; ++i)
                    writer.write_record(rm);
            }
            writer.write_record(rm);
        }
    }
}

} // namespace calib::proxyd
