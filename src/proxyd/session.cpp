#include "session.hpp"

#include "../obs/metrics.hpp"
#include "../query/calql.hpp"
#include "../query/processor.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>

namespace calib::proxyd {

namespace {

// ingest-side instruments (see docs/OBSERVABILITY.md)
obs::Counter proxyd_frames("proxyd.frames");
obs::Counter proxyd_records("proxyd.records");
obs::Counter proxyd_bytes("proxyd.bytes");
obs::Counter proxyd_dropped_frames("proxyd.dropped_frames");
obs::Counter proxyd_protocol_errors("proxyd.protocol_errors");
obs::Counter proxyd_unknown_attrs("proxyd.unknown_attrs");
obs::Counter proxyd_queries("proxyd.queries");
obs::Timer proxyd_query_time("proxyd.query");

/// Client-local attribute ids index a per-connection table; bound them so
/// a hostile client cannot make the daemon allocate per sparse id.
constexpr std::uint32_t kMaxLocalAttrId = 1u << 20;

AggregationConfig make_config(const std::string& aggregate) {
    if (aggregate.empty()) {
        // exact mode: the stored aggregate is the input multiset —
        // every attribute is key, count tracks multiplicity
        AggregationConfig cfg;
        cfg.key = KeySpec::everything();
        cfg.ops.push_back(AggOpConfig{AggOp::Count, "", ""});
        return cfg;
    }
    const QuerySpec spec = parse_calql(aggregate);
    if (!spec.has_aggregation())
        throw std::runtime_error("aggregate clause '" + aggregate +
                                 "' has no AGGREGATE/GROUP BY");
    return spec.aggregation;
}

std::uint64_t steady_now_us() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

// ------------------------------------------------------------- ProxyChannel

ProxyChannel::ProxyChannel(std::string name, const std::string& aggregate,
                           std::size_t prealloc, WindowSpec window, Clock clock)
    : name_(std::move(name)), registry_(std::make_unique<AttributeRegistry>()),
      exact_(aggregate.empty()), window_(std::move(window)),
      clock_(clock ? std::move(clock) : Clock(&steady_now_us)),
      prealloc_(prealloc), db_(make_config(aggregate), registry_.get()) {
    if (!windowed())
        db_.reserve(prealloc);
}

std::int64_t ProxyChannel::live_floor(std::uint64_t now_us) const noexcept {
    // the arrival pane of `now` is always representable: the shared
    // pane_index bound (|pane| < 2^62) holds for any uint64 µs clock
    const std::int64_t current =
        *pane_index(static_cast<double>(now_us), window_.slide());
    return current - static_cast<std::int64_t>(window_.pane_count()) + 1;
}

void ProxyChannel::fold(const IdRecord& record) {
    if (!windowed()) {
        db_.process(record);
        ++records_;
        return;
    }
    const std::uint64_t now = clock_();
    const std::int64_t pane =
        *pane_index(static_cast<double>(now), window_.slide());
    auto it = panes_.find(pane);
    if (it == panes_.end()) {
        it = panes_
                 .emplace(pane, AggregationDB(db_.config(), registry_.get()))
                 .first;
        it->second.reserve(prealloc_);
    }
    it->second.process(record);
    ++records_;
    retire_expired();
}

void ProxyChannel::retire_expired() {
    if (!windowed() || panes_.empty())
        return;
    const auto end = panes_.lower_bound(live_floor(clock_()));
    for (auto it = panes_.begin(); it != end; it = panes_.erase(it))
        ++retired_panes_;
}

std::size_t ProxyChannel::groups() const noexcept {
    if (!windowed())
        return db_.size();
    std::size_t n = 0;
    for (const auto& [idx, db] : panes_)
        n += db.size();
    return n;
}

std::size_t ProxyChannel::bytes() const noexcept {
    if (!windowed())
        return db_.bytes();
    std::size_t n = 0;
    for (const auto& [idx, db] : panes_)
        n += db.bytes();
    return n;
}

std::size_t ProxyChannel::live_panes() const noexcept {
    if (!windowed() || panes_.empty())
        return 0;
    const std::int64_t floor = live_floor(clock_());
    std::size_t n = 0;
    for (const auto& [idx, db] : panes_)
        if (idx >= floor)
            ++n;
    return n;
}

std::uint64_t ProxyChannel::live_records() const noexcept {
    if (!windowed() || panes_.empty())
        return 0;
    const std::int64_t floor = live_floor(clock_());
    std::uint64_t n = 0;
    for (const auto& [idx, db] : panes_)
        if (idx >= floor)
            n += db.num_processed();
    return n;
}

std::vector<ProxyChannel::Row> ProxyChannel::rows() const {
    std::vector<RecordMap> flushed;
    if (!windowed()) {
        flushed = db_.flush();
    } else {
        // fold the live panes (anchored at *now*, so idle time shrinks the
        // result even before the next retirement tick) into a scratch DB
        AggregationDB scratch(db_.config(), registry_.get());
        if (!panes_.empty()) {
            const std::int64_t floor = live_floor(clock_());
            for (const auto& [idx, db] : panes_)
                if (idx >= floor)
                    scratch.merge(db);
        }
        flushed = scratch.flush();
    }

    std::vector<Row> out;
    out.reserve(flushed.size());
    for (RecordMap& r : flushed) {
        Row row;
        if (exact_ && !r.empty()) {
            // the trailing entry is the count op result: the record's
            // multiplicity, not part of the original record
            row.weight = r[r.size() - 1].second.to_uint();
            row.record.reserve(r.size() - 1);
            for (std::size_t i = 0; i + 1 < r.size(); ++i)
                row.record.append(r[i].first, r[i].second);
        } else {
            row.record = std::move(r);
        }
        out.push_back(std::move(row));
    }
    return out;
}

std::string ProxyChannel::answer(std::string_view calql, bool* ok) const {
    obs::Timer::Scope query_scope(proxyd_query_time);
    proxyd_queries.add();
    try {
        QueryProcessor proc(parse_calql(calql));
        for (const Row& row : rows())
            for (std::uint64_t i = 0; i < row.weight; ++i)
                proc.add(row.record);
        std::ostringstream os;
        proc.write(os);
        if (ok)
            *ok = true;
        return os.str();
    } catch (const CalQLError& e) {
        if (ok)
            *ok = false;
        return "query error at position " + std::to_string(e.position()) + ": " +
               e.what();
    } catch (const std::exception& e) {
        if (ok)
            *ok = false;
        return std::string("query failed: ") + e.what();
    }
}

// ------------------------------------------------------------ IngestSession

IngestSession::IngestSession(Hooks hooks, std::size_t max_frame_bytes)
    : hooks_(std::move(hooks)), decoder_(max_frame_bytes) {}

IngestSession::Status IngestSession::feed(const void* data, std::size_t len) {
    proxyd_bytes.add(len);
    decoder_.feed(data, len);

    net::FrameView frame;
    while (decoder_.next(frame)) {
        ++frames_;
        proxyd_frames.add();
        Status st;
        try {
            st = handle(frame);
        } catch (const std::exception& e) {
            // truncated / malformed payload (ByteReader and friends)
            st = protocol_error(std::string("malformed ") +
                                net::frame_type_name(frame.type) +
                                " frame: " + e.what());
        }
        if (st != Status::Ok)
            return st;
    }

    const std::uint64_t dropped = decoder_.dropped_frames();
    if (dropped > dropped_seen_) {
        proxyd_dropped_frames.add(dropped - dropped_seen_);
        dropped_seen_ = dropped;
    }
    return Status::Ok;
}

IngestSession::Status IngestSession::protocol_error(const std::string& message) {
    ++protocol_errors_;
    proxyd_protocol_errors.add();
    if (hooks_.respond)
        hooks_.respond(1, message);
    return Status::Error;
}

IngestSession::Status IngestSession::handle(const net::FrameView& frame) {
    switch (frame.type) {
    case net::FrameType::Hello: {
        if (hello_seen_)
            return protocol_error("duplicate hello");
        const net::HelloInfo hello = net::parse_hello(frame.payload);
        if (hello.version != net::kProtocolVersion)
            return protocol_error("unsupported protocol version " +
                                  std::to_string(hello.version));
        client_name_ = hello.client_name;
        if (!hello.channel_name.empty()) {
            channel_ = hooks_.open_channel
                           ? hooks_.open_channel(hello.channel_name,
                                                 !hello.query_only)
                           : nullptr;
            if (!channel_)
                return protocol_error(
                    hello.query_only
                        ? "no such channel '" + hello.channel_name + "'"
                        : "cannot open channel '" + hello.channel_name + "'");
            ++channel_->clients_total;
        }
        hello_seen_ = true;
        if (hooks_.respond)
            hooks_.respond(0, "calib-proxyd " +
                                  std::to_string(net::kProtocolVersion));
        return Status::Ok;
    }

    case net::FrameType::Attr: {
        if (!channel_)
            return protocol_error("attr frame before hello/channel");
        const net::AttrDef def = net::parse_attr(frame.payload);
        if (def.local_id > kMaxLocalAttrId)
            return protocol_error("attribute local id out of range");
        std::uint32_t props = def.properties;
        if (channel_->exact()) {
            // exact mode stores the record verbatim: no attribute may be
            // excluded from the implicit everything-key
            props &= ~(prop::aggregatable | prop::skip_key | prop::hidden);
        }
        const Attribute a = channel_->registry().create(def.name, def.type, props);
        if (def.local_id >= attr_by_local_.size())
            attr_by_local_.resize(def.local_id + 1, invalid_id);
        attr_by_local_[def.local_id] = a.id();
        return Status::Ok;
    }

    case net::FrameType::Records: {
        if (!channel_)
            return protocol_error("records frame before hello/channel");
        net::RecordsParser parser(frame.payload);
        for (;;) {
            scratch_.clear();
            const bool more = parser.next([&](std::uint32_t local, const Variant& v) {
                const id_t attr = local < attr_by_local_.size()
                                      ? attr_by_local_[local]
                                      : invalid_id;
                if (attr == invalid_id) {
                    ++unknown_attrs_;
                    proxyd_unknown_attrs.add();
                    return;
                }
                if (!v.empty())
                    scratch_.append(attr, v);
            });
            if (!more)
                break;
            if (join_globals_)
                for (const Entry& e : globals_)
                    if (!scratch_.contains(e.attribute))
                        scratch_.append(e.attribute, e.value);
            channel_->fold(scratch_);
            ++records_;
            proxyd_records.add();
        }
        return Status::Ok;
    }

    case net::FrameType::Globals: {
        if (!channel_)
            return protocol_error("globals frame before hello/channel");
        const net::GlobalsInfo info = net::parse_globals(frame.payload);
        globals_.clear();
        for (const auto& [local, value] : info.entries) {
            const id_t attr = local < attr_by_local_.size() ? attr_by_local_[local]
                                                            : invalid_id;
            if (attr == invalid_id) {
                ++unknown_attrs_;
                proxyd_unknown_attrs.add();
                continue;
            }
            if (!value.empty())
                globals_.set(attr, value);
        }
        join_globals_ = info.join;
        return Status::Ok;
    }

    case net::FrameType::Query: {
        if (!hello_seen_)
            return protocol_error("query before hello");
        const std::string calql = net::parse_query(frame.payload);
        if (hooks_.on_query)
            hooks_.on_query(calql);
        else if (hooks_.respond)
            hooks_.respond(1, "queries not supported on this endpoint");
        return Status::Ok;
    }

    case net::FrameType::Bye:
        return Status::Closed;

    case net::FrameType::Result:
        // daemon-to-client only
        return protocol_error("unexpected result frame from client");
    }
    return protocol_error("unknown frame type " +
                          std::to_string(static_cast<unsigned>(frame.type)));
}

} // namespace calib::proxyd
