// Per-connection ingest state machine and shared per-channel aggregation
// state for calib-proxyd.
//
// IngestSession is deliberately transport-free: the daemon feeds it the
// bytes it read from a socket, the frame fuzzer feeds it adversarial
// byte streams directly. It owns the frame decoder and the connection's
// resolve-once attribute table (client-local id -> daemon registry id),
// folds record batches into the connection's ProxyChannel, and surfaces
// queries/responses through caller-provided hooks.
//
// ProxyChannel is the daemon's unit of shared aggregation: one
// AttributeRegistry + one AggregationDB that every client connected to
// the channel folds into. Two modes:
//
//   exact mode (default): the ingest aggregation is GROUP BY * with a
//     single count operator — the DB holds the exact multiset of records
//     seen (unique records + multiplicity). Queries replay the stored
//     records (expanded by multiplicity, multiplicity column stripped),
//     so any CalQL query answers exactly as offline cali-query over the
//     concatenated input would.
//
//   reduced mode (--aggregate "<clause>"): records are folded through a
//     configured aggregation; queries see the *aggregated* records, so
//     they follow two-phase re-aggregation semantics (sum(count),
//     sum(sum#x), ... — the same contract as querying the runtime
//     aggregate service's output files).
//
// Either mode may additionally be *windowed* (--window/--slide): the
// channel keeps a ring of per-pane databases keyed by arrival time (the
// daemon's monotonic clock, not a record attribute — clients need not
// carry synchronized timestamps), and rows()/answer() fold only the
// panes inside the trailing window, anchored at the current clock. Panes
// older than the window retire; during idle periods the daemon's timerfd
// drives retirement so the live set decays even with no traffic.
//
// Thread-safety: none — the daemon's event loop owns all channels and
// sessions (single-threaded aggregation, no locks; clients achieve
// parallelism across connections, the daemon stays the serialization
// point, paper §IV-B's "one DB per thread" design applied node-wide).
#pragma once

#include "../net/frame.hpp"

#include "../aggregate/aggregation_db.hpp"
#include "../aggregate/window.hpp"
#include "../common/attribute.hpp"
#include "../common/idrecord.hpp"
#include "../common/recordmap.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace calib::proxyd {

class ProxyChannel {
public:
    /// Monotonic microsecond clock; injectable so tests can steer pane
    /// assignment and retirement deterministically. Empty = steady clock.
    using Clock = std::function<std::uint64_t()>;

    /// \param aggregate CalQL aggregation clause ("AGGREGATE ... GROUP BY
    ///        ..."), or empty for exact mode.
    /// \param window arrival-time window; disabled (default) keeps one
    ///        cumulative database, enabled keeps a pane ring and answers
    ///        queries over the trailing window only.
    /// Throws CalQLError / runtime_error on a bad clause.
    ProxyChannel(std::string name, const std::string& aggregate,
                 std::size_t prealloc = 1024, WindowSpec window = {},
                 Clock clock = {});

    const std::string& name() const noexcept { return name_; }
    bool exact() const noexcept { return exact_; }
    bool windowed() const noexcept { return window_.enabled(); }
    const WindowSpec& window() const noexcept { return window_; }

    AttributeRegistry& registry() noexcept { return *registry_; }

    /// Fold one record (daemon-registry attribute ids) into the channel.
    void fold(const IdRecord& record);

    /// Drop panes that fell out of the live range (windowed mode; no-op
    /// otherwise). The daemon's timerfd calls this once per slide tick so
    /// idle channels decay without traffic.
    void retire_expired();

    std::uint64_t records() const noexcept { return records_; }
    std::size_t groups() const noexcept;
    std::size_t bytes() const noexcept;
    const AggregationConfig& config() const noexcept { return db_.config(); }

    /// Windowed-mode gauges (all zero when not windowed): panes currently
    /// inside the live range, panes retired so far, and records folded
    /// into live panes.
    std::size_t live_panes() const noexcept;
    std::uint64_t retired_panes() const noexcept { return retired_panes_; }
    std::uint64_t live_records() const noexcept;

    std::uint64_t clients_total = 0; ///< connections that ever joined

    /// Materialized channel contents. In exact mode \a weight is the
    /// record's multiplicity and the multiplicity column is stripped;
    /// in reduced mode weight is 1 and the record carries the op results.
    struct Row {
        RecordMap record;
        std::uint64_t weight = 1;
    };
    std::vector<Row> rows() const;

    /// Answer a CalQL query over the current channel contents. Returns
    /// the formatted output; on failure *ok is false and the return value
    /// is the error message.
    std::string answer(std::string_view calql, bool* ok) const;

private:
    /// Smallest pane index still inside the window, anchored at now.
    std::int64_t live_floor(std::uint64_t now_us) const noexcept;

    std::string name_;
    std::unique_ptr<AttributeRegistry> registry_;
    bool exact_;
    WindowSpec window_;
    Clock clock_;
    std::size_t prealloc_;
    AggregationDB db_; ///< the cumulative database (non-windowed mode)
    std::map<std::int64_t, AggregationDB> panes_; ///< windowed mode, ascending
    std::uint64_t retired_panes_ = 0;
    std::uint64_t records_ = 0;
};

class IngestSession {
public:
    struct Hooks {
        /// Find the channel \a name joins, creating it when \a create is
        /// set (false for query-only hellos: look up only, so a typo'd
        /// channel name is an error instead of a fresh empty channel).
        /// Empty name = no channel (return nullptr, not an error);
        /// nullptr for a non-empty name rejects the Hello.
        std::function<ProxyChannel*(const std::string& name, bool create)>
            open_channel;

        /// A Query frame arrived; the daemon answers (via respond or its
        /// own means). The session's channel() identifies the target.
        std::function<void(std::string_view calql)> on_query;

        /// Send a Result frame back to the client (0 = ok).
        std::function<void(std::uint8_t status, std::string_view body)> respond;
    };

    explicit IngestSession(Hooks hooks,
                           std::size_t max_frame_bytes = net::kDefaultMaxFrameBytes);

    enum class Status {
        Ok,     ///< keep the connection open
        Closed, ///< client said Bye; close after pending output
        Error   ///< protocol violation; close the connection
    };

    /// Feed raw bytes from the wire and process every complete frame.
    Status feed(const void* data, std::size_t len);

    ProxyChannel* channel() const noexcept { return channel_; }
    const std::string& client_name() const noexcept { return client_name_; }

    std::uint64_t frames() const noexcept { return frames_; }
    std::uint64_t records() const noexcept { return records_; }
    std::uint64_t protocol_errors() const noexcept { return protocol_errors_; }
    std::uint64_t unknown_attrs() const noexcept { return unknown_attrs_; }
    std::uint64_t dropped_frames() const noexcept {
        return decoder_.dropped_frames();
    }

private:
    Status handle(const net::FrameView& frame);
    Status protocol_error(const std::string& message);

    Hooks hooks_;
    net::FrameDecoder decoder_;

    ProxyChannel* channel_ = nullptr;
    bool hello_seen_       = false;
    std::string client_name_;

    // resolve-once: client-local attribute id -> daemon registry id
    std::vector<id_t> attr_by_local_;
    IdRecord scratch_;
    IdRecord globals_;
    bool join_globals_ = false;

    std::uint64_t frames_          = 0;
    std::uint64_t records_         = 0;
    std::uint64_t protocol_errors_ = 0;
    std::uint64_t unknown_attrs_   = 0;
    std::uint64_t dropped_seen_    = 0;
};

} // namespace calib::proxyd
