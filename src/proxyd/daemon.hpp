// ProxyDaemon: the calib-proxyd event loop.
//
// A single-threaded, level-triggered epoll loop that owns every listener,
// connection, and channel. Clients connect over a unix-domain socket
// and/or TCP, stream framed records (see net/frame.hpp), and may run live
// CalQL queries; an optional HTTP listener serves a Prometheus-style
// plaintext scrape of the daemon's self-metrics and channel contents.
//
// Because one thread owns all state, shared-channel aggregation needs no
// locks (paper §IV-B's per-thread-database design applied node-wide);
// clients achieve parallelism across connections, the daemon is the
// serialization point.
//
// Back-pressure: the frame decoder sheds oversized frames wholesale
// (proxyd.dropped_frames), and each connection's outbound buffer is
// bounded — a client that stops reading its query results past
// max_tx_bytes is disconnected (proxyd.shed_connections) rather than
// buffering without bound.
//
// Shutdown: stop() is async-signal-safe (one eventfd write) so it can be
// called from a SIGINT/SIGTERM handler or another thread. The loop then
// drains: listeners close, existing connections are serviced until they
// finish (or drain_timeout_ms passes), buffered frames are processed
// before the sockets close, and run() returns with all records folded in.
#pragma once

#include "session.hpp"

#include "../net/socket.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace calib::proxyd {

struct DaemonOptions {
    std::string listen;     ///< ingest address (unix path or host:port)
    std::string listen_tcp; ///< optional second ingest listener
    std::string http;       ///< HTTP scrape address (host:port); empty = off
    std::string aggregate;  ///< CalQL aggregation clause; empty = exact mode

    std::size_t max_frame_bytes = net::kDefaultMaxFrameBytes;
    std::size_t max_tx_bytes    = 8u << 20; ///< per-connection outbound bound
    std::size_t prealloc        = 1024;     ///< per-channel entry preallocation
    int drain_timeout_ms        = 5000;     ///< shutdown drain deadline
    std::size_t scrape_max_series = 1000;   ///< data series cap per scrape

    /// Arrival-time window per channel: queries and scrapes see only the
    /// trailing window_us of traffic. 0 = cumulative (no window).
    std::uint64_t window_us = 0;
    std::uint64_t slide_us  = 0; ///< pane width; 0 = tumbling (== window_us)
    /// Injectable µs clock for channel pane assignment (tests); empty =
    /// monotonic steady clock.
    ProxyChannel::Clock clock;
};

class ProxyDaemon {
public:
    explicit ProxyDaemon(DaemonOptions opts);
    ~ProxyDaemon();

    ProxyDaemon(const ProxyDaemon&)            = delete;
    ProxyDaemon& operator=(const ProxyDaemon&) = delete;

    /// Bind listeners and set up the event loop. Throws on failure.
    /// After start(), ingest_address()/http_address() report the resolved
    /// addresses (a ":0" TCP listener reports its assigned port).
    void start();

    /// Serve until stop() is called and the drain completes.
    void run();

    /// Request shutdown. Async-signal-safe; callable from any thread or a
    /// signal handler, before or during run().
    void stop() noexcept;

    const std::string& ingest_address() const noexcept { return ingest_addr_; }
    const std::string& tcp_address() const noexcept { return tcp_addr_; }
    const std::string& http_address() const noexcept { return http_addr_; }

    /// Find a channel, creating it when \a create is set (daemon-global
    /// aggregate clause applies). Query-only hellos pass create = false
    /// so a mistyped channel name errors instead of materializing a new
    /// empty channel.
    ProxyChannel* channel(const std::string& name, bool create = true);
    std::vector<const ProxyChannel*> channels() const;

    /// Prometheus text exposition: calib_* self-metrics plus channel
    /// contents as labeled series (capped at scrape_max_series, with an
    /// explicit truncation comment when the cap hits).
    std::string scrape_text() const;

    /// Write every channel's aggregate to a .cali file; "%c" in \a pattern
    /// expands to the channel name. Exact-mode channels emit one record
    /// per unique record with its multiplicity as "count"; a record that
    /// already carries a numeric count column gets it multiplied by the
    /// multiplicity instead of a duplicate column.
    void write_flush_files(const std::string& pattern) const;

    struct Stats {
        std::uint64_t connections_total  = 0;
        std::uint64_t shed_connections   = 0;
        std::uint64_t http_requests      = 0;
        std::uint64_t records            = 0; ///< sum over channels
    };
    Stats stats() const;

private:
    struct Connection;

    void handle_listener(int fd);
    void handle_connection(Connection& conn, std::uint32_t events);
    void handle_http_request(Connection& conn);
    void queue_result(Connection& conn, std::uint8_t status,
                      std::string_view body);
    void queue_bytes(Connection& conn, const void* data, std::size_t len);
    bool flush_tx(Connection& conn); ///< false when the connection died
    void update_events(Connection& conn);
    void close_connection(Connection& conn);
    void begin_drain();
    /// Re-arm the timerfd to the nearest pending deadline: the next slide
    /// tick (windowed channels retire panes there) and/or the drain
    /// deadline. Disarmed when neither applies.
    void arm_timer();
    /// Timer fired: retire expired panes on every channel, re-arm.
    /// Returns false when the drain deadline has passed (stop the loop).
    bool on_timer();

    DaemonOptions opts_;

    net::Socket ingest_listener_;
    net::Socket tcp_listener_;
    net::Socket http_listener_;
    std::string ingest_addr_;
    std::string tcp_addr_;
    std::string http_addr_;
    std::string unix_path_; ///< unlinked on shutdown

    int epoll_fd_ = -1;
    int stop_fd_  = -1; ///< eventfd; stop() writes, the loop reads
    int timer_fd_ = -1; ///< drives pane retirement and the drain deadline

    bool draining_          = false;
    std::uint64_t deadline_ = 0; ///< drain deadline, monotonic ns

    // keyed by fd; Connection owns the socket
    std::map<int, std::unique_ptr<Connection>> conns_;
    // ordered so channels() / flushes are deterministic
    std::map<std::string, std::unique_ptr<ProxyChannel>> channels_;

    std::uint64_t connections_total_ = 0;
    std::uint64_t shed_connections_  = 0;
    std::uint64_t http_requests_     = 0;
};

} // namespace calib::proxyd
