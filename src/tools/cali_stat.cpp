// cali-stat: dataset inspection tool. Prints record counts, the attribute
// inventory (type, occurrence count, distinct values, numeric min/max),
// and per-file globals of one or more calib stream files — the "what is
// in this dataset?" step before writing queries.
#include "../calib.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace {

struct AttributeStats {
    std::uint64_t occurrences = 0;
    std::set<std::string> values; ///< capped sample of distinct values
    bool values_capped = false;
    bool numeric       = true;
    double min         = 1e300;
    double max         = -1e300;
    calib::Variant::Type type = calib::Variant::Type::Empty;

    static constexpr std::size_t value_cap = 64;

    void update(const calib::Variant& v) {
        ++occurrences;
        if (type == calib::Variant::Type::Empty)
            type = v.type();
        if (v.is_numeric()) {
            min = std::min(min, v.to_double());
            max = std::max(max, v.to_double());
        } else {
            numeric = false;
        }
        if (values.size() < value_cap)
            values.insert(v.to_string());
        else
            values_capped = true;
    }
};

} // namespace

int main(int argc, char** argv) {
    bool show_globals = false;
    bool show_values  = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-g" || arg == "--globals")
            show_globals = true;
        else if (arg == "-v" || arg == "--values")
            show_values = true;
        else if (arg == "-h" || arg == "--help") {
            std::puts("usage: cali-stat [-g|--globals] [-v|--values] <file.cali>...");
            return 0;
        } else if (arg == "-") {
            files.push_back(arg); // standard input
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "cali-stat: unknown option %s\n", arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty()) {
        std::puts("usage: cali-stat [-g|--globals] [-v|--values] <file.cali>...");
        return 2;
    }

    try {
        // id-based scan: the reader resolves each attribute name once, and
        // the per-entry hot loop indexes a dense vector — no string hashing
        calib::AttributeRegistry registry;
        std::vector<AttributeStats> by_id;
        std::uint64_t records = 0, entries = 0;

        for (const std::string& file : files) {
            calib::IdRecord globals;
            std::uint64_t file_records = 0;
            calib::CaliReader::read_file(
                file, registry,
                [&](calib::IdRecord&& r) {
                    ++records;
                    ++file_records;
                    for (const calib::Entry& e : r) {
                        ++entries;
                        if (e.attribute >= by_id.size())
                            by_id.resize(e.attribute + 1);
                        by_id[e.attribute].update(e.value);
                    }
                },
                &globals);

            std::printf("%s: %llu records\n", file.c_str(),
                        static_cast<unsigned long long>(file_records));
            if (show_globals)
                for (const calib::Entry& e : globals)
                    std::printf("    %s = %s\n", registry.get(e.attribute).name(),
                                e.value.to_string().c_str());
        }

        // restore names for the report, sorted as before (by name)
        std::map<std::string, AttributeStats> attributes;
        for (calib::id_t id = 0; id < by_id.size(); ++id)
            if (by_id[id].occurrences > 0)
                attributes.emplace(registry.get(id).name_view(),
                                   std::move(by_id[id]));

        std::printf("\n%llu records, %llu entries, %zu attributes\n\n",
                    static_cast<unsigned long long>(records),
                    static_cast<unsigned long long>(entries), attributes.size());

        std::printf("%-32s %-8s %12s %10s %14s %14s\n", "attribute", "type",
                    "occurrences", "distinct", "min", "max");
        for (const auto& [name, stat] : attributes) {
            std::string distinct = std::to_string(stat.values.size());
            if (stat.values_capped)
                distinct = ">" + distinct;
            char min_s[32] = "-", max_s[32] = "-";
            if (stat.numeric && stat.occurrences > 0) {
                std::snprintf(min_s, sizeof(min_s), "%.6g", stat.min);
                std::snprintf(max_s, sizeof(max_s), "%.6g", stat.max);
            }
            std::printf("%-32s %-8s %12llu %10s %14s %14s\n", name.c_str(),
                        calib::Variant::type_name(stat.type),
                        static_cast<unsigned long long>(stat.occurrences),
                        distinct.c_str(), min_s, max_s);
            if (show_values && !stat.numeric) {
                std::string line;
                for (const std::string& v : stat.values) {
                    if (!line.empty())
                        line += ", ";
                    if (line.size() > 90) {
                        line += "...";
                        break;
                    }
                    line += v;
                }
                std::printf("    values: %s\n", line.c_str());
            }
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "cali-stat: %s\n", e.what());
        return 1;
    }
    return 0;
}
