// calib-benchdiff: the dogfooded performance-history tool.
//
//   calib-benchdiff append hist.cali BENCH_io.json stats.json
//   calib-benchdiff check  hist.cali --json verdict.json
//   calib-benchdiff list   hist.cali
//   calib-benchdiff query  hist.cali -q "AGGREGATE avg(bd.value) ..."
//
// `append` normalizes bench JSON documents and --stats-json self-profiles
// into one history segment (one record per metric sample, stamped with
// commit / time / host / hardware concurrency / build tag; see
// src/benchdiff/history.hpp). The history file is an ordinary calib
// stream: every trend question is a CalQL query, and the regression gate
// itself (check) builds its per-commit series through the query engine.
// `check` exits 3 when a tracked metric regresses past its noise-aware
// threshold (median +- max(k*MAD-sigma, rel_floor) over a trailing
// window), so CI can gate on it directly.
#include "../benchdiff/analysis.hpp"
#include "../benchdiff/history.hpp"

#include "../engine/parallel_processor.hpp"
#include "../query/calql.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

void usage() {
    std::puts(
        "usage: calib-benchdiff <command> <history.cali> [options]\n"
        "\n"
        "commands:\n"
        "  append <history.cali> <input>...   normalize bench JSON ('{...}')\n"
        "                                     and --stats-json record arrays\n"
        "                                     ('[...]') into one history\n"
        "                                     segment\n"
        "  check  <history.cali>              evaluate the regression gate\n"
        "                                     over the newest run; exit 3 on\n"
        "                                     regression\n"
        "  list   <history.cali>              per-series summary (count, avg,\n"
        "                                     min, max) via CalQL\n"
        "  query  <history.cali> -q <calql>   free-form CalQL over the\n"
        "                                     history\n"
        "\n"
        "append options:\n"
        "  --bench <name>        series name override for ALL inputs\n"
        "                        (default: the document's own name)\n"
        "  --commit <sha>        commit stamp (default: $CALIB_GIT_SHA, the\n"
        "                        build-time sha, then \"unknown\")\n"
        "  --build <tag>         build tag stamp (default: $CALIB_BUILD_TAG)\n"
        "  --dry-run             print the normalized samples, append nothing\n"
        "\n"
        "check options:\n"
        "  --window <n>          trailing baseline points     (default 20)\n"
        "  --k <f>               MAD-sigma multiplier         (default 4.0)\n"
        "  --rel-floor <f>       relative threshold floor     (default 0.05)\n"
        "  --min-samples <n>     points required to gate      (default 4)\n"
        "  --overrides <file>    per-series gate overrides (docs/BENCHDIFF.md)\n"
        "  --json <file>         write the verdict as a JSON record array\n"
        "  --soft                report but always exit 0 (PR builds)\n"
        "  --verbose             include ok/untracked series in the table\n"
        "\n"
        "common options:\n"
        "  -t, --threads <n>     query engine threads (default 1)\n"
        "  -h, --help            show this message\n"
        "\n"
        "exit status: 0 ok, 1 error, 2 usage, 3 regression detected");
}

int fail_usage(const char* what) {
    std::fprintf(stderr, "calib-benchdiff: %s\n", what);
    return 2;
}

bool need_arg(int& i, int argc, char** argv, std::string& out) {
    if (i + 1 >= argc) {
        std::fprintf(stderr, "calib-benchdiff: missing argument for %s\n",
                     argv[i]);
        return false;
    }
    out = argv[++i];
    return true;
}

int cmd_append(const std::string& history, int argc, char** argv, int first) {
    std::string bench_hint;
    std::string commit;
    std::string build;
    bool dry_run = false;
    std::vector<std::string> inputs;

    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string val;
        if (arg == "--bench") {
            if (!need_arg(i, argc, argv, bench_hint))
                return 2;
        } else if (arg == "--commit") {
            if (!need_arg(i, argc, argv, commit))
                return 2;
        } else if (arg == "--build") {
            if (!need_arg(i, argc, argv, build))
                return 2;
        } else if (arg == "--dry-run") {
            dry_run = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return fail_usage(("unknown append option " + arg).c_str());
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty())
        return fail_usage("append: no input files");

    using namespace calib::benchdiff;
    RunMeta meta;
    meta.commit = commit;
    meta.build  = build;

    std::vector<MetricSample> samples;
    for (const std::string& in : inputs) {
        std::vector<MetricSample> s = normalize_file(in, bench_hint, meta);
        samples.insert(samples.end(), s.begin(), s.end());
    }
    meta.fill_from(RunMeta::detect());

    if (dry_run) {
        for (const MetricSample& s : samples)
            std::printf("%s/%s = %.12g\n", s.bench.c_str(), s.metric.c_str(),
                        s.value);
        std::printf("# %zu sample(s), commit %s, not appended\n",
                    samples.size(),
                    meta.commit.empty() ? "unknown" : meta.commit.c_str());
        return 0;
    }
    if (samples.empty())
        return fail_usage("append: inputs contained no metric samples");

    const std::uint64_t seq = next_seq(history);
    append_history(history, samples, meta, seq);
    std::fprintf(stderr, "calib-benchdiff: appended %zu sample(s) as seq %llu"
                         " (commit %s)\n",
                 samples.size(), static_cast<unsigned long long>(seq),
                 meta.commit.empty() ? "unknown" : meta.commit.c_str());
    return 0;
}

int cmd_check(const std::string& history, int argc, char** argv, int first,
              std::size_t threads) {
    using namespace calib::benchdiff;
    GateConfig cfg;
    std::string overrides_path;
    std::string json_path;
    bool soft    = false;
    bool verbose = false;

    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string val;
        if (arg == "--window") {
            if (!need_arg(i, argc, argv, val))
                return 2;
            cfg.window = std::strtoull(val.c_str(), nullptr, 10);
        } else if (arg == "--k") {
            if (!need_arg(i, argc, argv, val))
                return 2;
            cfg.k = std::strtod(val.c_str(), nullptr);
        } else if (arg == "--rel-floor") {
            if (!need_arg(i, argc, argv, val))
                return 2;
            cfg.rel_floor = std::strtod(val.c_str(), nullptr);
        } else if (arg == "--min-samples") {
            if (!need_arg(i, argc, argv, val))
                return 2;
            cfg.min_samples = std::strtoull(val.c_str(), nullptr, 10);
        } else if (arg == "--overrides") {
            if (!need_arg(i, argc, argv, overrides_path))
                return 2;
        } else if (arg == "--json") {
            if (!need_arg(i, argc, argv, json_path))
                return 2;
        } else if (arg == "--soft") {
            soft = true;
        } else if (arg == "--verbose") {
            verbose = true;
        } else {
            return fail_usage(("unknown check option " + arg).c_str());
        }
    }

    std::vector<Override> overrides;
    if (!overrides_path.empty())
        overrides = load_overrides(overrides_path);

    const GateReport report = run_gate(history, cfg, overrides, threads);
    write_report_table(std::cout, report, verbose);

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::fprintf(stderr, "calib-benchdiff: cannot open %s\n",
                         json_path.c_str());
            return 1;
        }
        write_report_json(os, report);
    }
    if (report.failed() && !soft)
        return 3;
    return 0;
}

int run_query(const std::string& history, const std::string& calql,
              std::size_t threads) {
    calib::engine::EngineOptions opts;
    opts.threads = threads ? threads : 1;
    calib::engine::ParallelQueryProcessor engine(calib::parse_calql(calql),
                                                 opts);
    engine.run({history}).write(std::cout);
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string command = argv[1];
    if (command == "-h" || command == "--help") {
        usage();
        return 0;
    }
    if (argc < 3)
        return fail_usage("missing history file");
    const std::string history = argv[2];

    // extract common options; leave the rest for the subcommand
    std::size_t threads = 1;
    std::string calql;
    std::vector<char*> rest;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string val;
        if (arg == "-t" || arg == "--threads") {
            if (!need_arg(i, argc, argv, val))
                return 2;
            threads = std::strtoull(val.c_str(), nullptr, 10);
            if (threads == 0)
                return fail_usage("invalid thread count");
        } else if (arg == "-q" || arg == "--query") {
            if (!need_arg(i, argc, argv, val))
                return 2;
            calql = val;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else {
            rest.push_back(argv[i]);
        }
    }
    rest.push_back(nullptr);
    const int rest_argc = static_cast<int>(rest.size()) - 1;

    try {
        if (command == "append")
            return cmd_append(history, rest_argc, rest.data(), 0);
        if (command == "check")
            return cmd_check(history, rest_argc, rest.data(), 0, threads);
        if (command == "list") {
            if (rest_argc > 0)
                return fail_usage("list takes no extra arguments");
            return run_query(
                history,
                !calql.empty()
                    ? calql
                    : "SELECT bd.bench, bd.metric, count, avg(bd.value), "
                      "min(bd.value), max(bd.value) "
                      "AGGREGATE count, avg(bd.value), min(bd.value), "
                      "max(bd.value) "
                      "GROUP BY bd.bench, bd.metric "
                      "ORDER BY bd.bench, bd.metric FORMAT table",
                threads);
        }
        if (command == "query") {
            if (calql.empty())
                return fail_usage("query requires -q <calql>");
            return run_query(history, calql, threads);
        }
    } catch (const calib::CalQLError& e) {
        std::fprintf(stderr, "calib-benchdiff: query error at position %zu: %s\n",
                     e.position(), e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "calib-benchdiff: %s\n", e.what());
        return 1;
    }
    return fail_usage(("unknown command '" + command + "'").c_str());
}
