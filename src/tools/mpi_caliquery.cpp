// mpi-caliquery: the scalable parallel query application (paper §IV-C).
//
//   mpi-caliquery -n 8 -q "AGGREGATE sum(count) GROUP BY kernel" rank*.cali
//
// Input files are distributed across simmpi rank-threads; each rank runs
// the query on its share, then the partial aggregation databases are
// merged with a logarithmic binomial-tree reduction (Figure 4's workload).
// With --stats the process self-profiles (per-phase table and pipeline
// instruments on stderr, aggregated across all rank-threads).
#include "../calib.hpp"
#include "../common/util.hpp"
#include "../engine/parallel_processor.hpp"
#include "../io/filebuffer.hpp"
#include "../mpisim/treereduce.hpp"

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

namespace {

void usage() {
    std::puts("usage: mpi-caliquery [-n nprocs] [--threads m] [-t] [--stats]\n"
              "                     [--stats-json <f>] [--no-mmap]\n"
              "                     [--batch-size <n>] [--max-groups-mem <bytes>]\n"
              "                     [--merge-strategy <adaptive|pairwise|tree|radix>]\n"
              "                     -q <calql> <file>...");
}

} // namespace

int main(int argc, char** argv) {
    std::string query;
    std::string stats_json;
    int nprocs   = 4;
    int threads  = 1;
    bool timings = false;
    bool stats   = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-q" || arg == "--query") {
            if (++i >= argc)
                return std::fprintf(stderr, "missing argument for -q\n"), 2;
            query = argv[i];
        } else if (arg == "-n" || arg == "--nprocs") {
            if (++i >= argc)
                return std::fprintf(stderr, "missing argument for -n\n"), 2;
            nprocs = std::atoi(argv[i]);
        } else if (arg == "-t" || arg == "--timings") {
            timings = true;
        } else if (arg == "--stats") {
            // note: -s/-t short forms are not available here (-t = --timings)
            stats = true;
        } else if (arg == "--stats-json") {
            if (++i >= argc)
                return std::fprintf(stderr, "missing argument for --stats-json\n"), 2;
            stats_json = argv[i];
        } else if (arg == "--threads") {
            // note: -t is taken by --timings here; the short form lives on
            // cali-query only
            if (++i >= argc)
                return std::fprintf(stderr, "missing argument for --threads\n"), 2;
            threads = std::atoi(argv[i]);
            if (threads < 1)
                return std::fprintf(stderr, "invalid --threads value\n"), 2;
        } else if (arg == "--batch-size") {
            // flows to every rank's local engine via the process-wide default
            if (++i >= argc)
                return std::fprintf(stderr, "missing argument for --batch-size\n"), 2;
            std::size_t n = 0;
            if (!calib::util::parse_size(argv[i], n) || n == 0 ||
                n > (std::size_t(1) << 20))
                return std::fprintf(stderr, "invalid --batch-size value\n"), 2;
            calib::engine::set_default_batch_size(n);
        } else if (arg == "--max-groups-mem") {
            if (++i >= argc)
                return std::fprintf(stderr,
                                    "missing argument for --max-groups-mem\n"),
                       2;
            std::size_t n = 0;
            if (!calib::util::parse_size(argv[i], n))
                return std::fprintf(stderr, "invalid --max-groups-mem value\n"), 2;
            calib::engine::set_default_agg_memory_budget(n);
        } else if (arg == "--merge-strategy") {
            // flows to every rank's local engine via the process-wide default
            // (simmpi builds its own EngineOptions), like --batch-size
            if (++i >= argc)
                return std::fprintf(stderr,
                                    "missing argument for --merge-strategy\n"),
                       2;
            calib::engine::MergeStrategy s = calib::engine::MergeStrategy::Default;
            if (!calib::engine::parse_merge_strategy(argv[i], s))
                return std::fprintf(stderr, "invalid --merge-strategy value\n"), 2;
            calib::engine::set_default_merge_strategy(s);
        } else if (arg == "--no-mmap") {
            calib::FileBuffer::set_mmap_enabled(false);
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "mpi-caliquery: unknown option %s\n", arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty() || nprocs < 1) {
        usage();
        return 2;
    }

    const bool self_profile = stats || !stats_json.empty();
    if (self_profile) {
        calib::obs::set_enabled(true);
        calib::obs::MetricsRegistry::instance().reset();
    }

    try {
        const calib::QuerySpec spec = calib::parse_calql(query);
        std::vector<calib::RecordMap> result;
        const calib::simmpi::QueryTimes times =
            calib::simmpi::parallel_query(spec, files, nprocs, &result, threads);

        calib::format_records(std::cout, result, spec);
        if (timings)
            std::fprintf(stderr,
                         "mpi-caliquery: nprocs=%d total=%.6fs local=%.6fs "
                         "reduce=%.6fs in=%llu out=%zu bytes=%llu\n",
                         times.nprocs, times.total_s, times.local_s, times.reduce_s,
                         static_cast<unsigned long long>(times.input_records),
                         times.output_records,
                         static_cast<unsigned long long>(times.bytes_reduced));
        if (stats)
            calib::obs::write_stats_table(stderr);
        if (!stats_json.empty() && !calib::obs::write_stats_json_file(stats_json))
            return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mpi-caliquery: %s\n", e.what());
        return 1;
    }
    return 0;
}
