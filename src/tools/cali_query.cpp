// cali-query: the serial off-line query and analysis tool (paper §IV-C).
//
//   cali-query -q "AGGREGATE sum(time.duration) GROUP BY kernel" a.cali b.cali
//
// Reads one or more calib stream files, streams their records through the
// query pipeline (filter -> aggregate -> sort -> format), and prints the
// result. With --stats, the tool self-profiles: every pipeline layer's
// instruments (reader, filter, aggregation, thread pool) plus a per-phase
// wall-clock table go to stderr; --stats-json writes the same data as a
// JSON record array that cali-query itself can consume (--json-input).
#include "../calib.hpp"

#include "../common/util.hpp"
#include "../io/filebuffer.hpp"
#include "../net/client.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

void usage() {
    std::puts(
        "usage: cali-query [options] <file.cali>...\n"
        "\n"
        "a single '-' input reads the stream from standard input\n"
        "\n"
        "options:\n"
        "  -q, --query <calql>   query expression (default: FORMAT table)\n"
        "  -c, --connect <addr>  run the query live on a calib-proxyd daemon\n"
        "                        (unix path or host:port) instead of files\n"
        "      --channel <name>  daemon channel to query (default: default)\n"
        "  -o, --output <file>   write the report to <file> instead of stdout\n"
        "  -t, --threads <n>     worker threads (default: hardware concurrency;\n"
        "                        1 = serial; output is identical for any n)\n"
        "  -j, --json-input      inputs are JSON record arrays (FORMAT json output)\n"
        "  -G, --with-globals    join each file's globals (e.g. mpi.rank) onto\n"
        "                        every record of that file\n"
        "  -s, --stats           self-profile: per-phase timings and pipeline\n"
        "                        instruments to stderr (stdout is unchanged)\n"
        "      --batch-size <n>  records per columnar batch (default 1024;\n"
        "                        also: CALIB_BATCH_SIZE; suffixes K/M/G)\n"
        "      --no-batch        record-at-a-time pipeline (same output bytes;\n"
        "                        for comparison and debugging)\n"
        "      --merge-strategy <adaptive|pairwise|tree|radix>\n"
        "                        phase-2 partial-merge strategy (default\n"
        "                        adaptive: picked per query from observed\n"
        "                        cardinality; also: CALIB_MERGE_STRATEGY;\n"
        "                        same output bytes for every choice)\n"
        "      --max-groups-mem <bytes>\n"
        "                        bound aggregation memory: beyond this, sorted\n"
        "                        runs of partial aggregates spill to a temp\n"
        "                        file (default unbounded; also: CALIB_AGG_MEM;\n"
        "                        suffixes K/M/G)\n"
        "      --no-mmap         read files into memory instead of mmap()ing\n"
        "                        them (also: CALIB_NO_MMAP=1)\n"
        "      --stats-json <f>  write the self-profile as a JSON record array\n"
        "      --trace-json <f>  write a span timeline of the run as Chrome\n"
        "                        trace_event JSON (open in Perfetto or\n"
        "                        chrome://tracing; also queryable with\n"
        "                        --json-input)\n"
        "  -v, --verbose         more diagnostics on stderr (-v info, -vv debug)\n"
        "  -h, --help            show this message\n"
        "\n"
        "query language clauses:\n"
        "  SELECT col,...  AGGREGATE op(attr),...  GROUP BY attr,...|*\n"
        "  LET x=scale|truncate|ratio|first(...)   WHERE cond,...\n"
        "  WINDOW dur [BY attr] [SLIDE dur]  (trailing-window aggregation\n"
        "                        over the time attribute; default time.offset;\n"
        "                        durations take us/ms/s/m/h suffixes)\n"
        "  ORDER BY attr [DESC]  FORMAT table|csv|json|expand|tree  LIMIT n");
}

} // namespace

int main(int argc, char** argv) {
    std::string query;
    std::string output;
    std::string connect;
    std::string channel = "default";
    std::string stats_json;
    std::string trace_json;
    long threads      = 0; // 0 = hardware concurrency
    int verbose       = 0;
    bool stats        = false;
    bool json_input   = false;
    bool with_globals = false;
    bool batched      = true;
    std::size_t batch_size = 0;                             // 0 = default
    std::size_t agg_mem    = static_cast<std::size_t>(-1);  // -1 = default
    calib::engine::MergeStrategy merge_strategy =
        calib::engine::MergeStrategy::Default; // env or adaptive
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-q" || arg == "--query") {
            if (++i >= argc) {
                std::fprintf(stderr, "cali-query: missing argument for %s\n",
                             arg.c_str());
                return 2;
            }
            query = argv[i];
        } else if (arg == "-c" || arg == "--connect") {
            if (++i >= argc) {
                std::fprintf(stderr, "cali-query: missing argument for %s\n",
                             arg.c_str());
                return 2;
            }
            connect = argv[i];
        } else if (arg == "--channel") {
            if (++i >= argc) {
                std::fprintf(stderr, "cali-query: missing argument for %s\n",
                             arg.c_str());
                return 2;
            }
            channel = argv[i];
        } else if (arg == "-o" || arg == "--output") {
            if (++i >= argc) {
                std::fprintf(stderr, "cali-query: missing argument for %s\n",
                             arg.c_str());
                return 2;
            }
            output = argv[i];
        } else if (arg == "-t" || arg == "--threads") {
            if (++i >= argc) {
                std::fprintf(stderr, "cali-query: missing argument for %s\n",
                             arg.c_str());
                return 2;
            }
            threads = std::strtol(argv[i], nullptr, 10);
            if (threads < 1) {
                std::fprintf(stderr, "cali-query: invalid thread count '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "-s" || arg == "--stats") {
            stats = true;
        } else if (arg == "--batch-size") {
            if (++i >= argc) {
                std::fprintf(stderr, "cali-query: missing argument for %s\n",
                             arg.c_str());
                return 2;
            }
            if (!calib::util::parse_size(argv[i], batch_size) || batch_size == 0 ||
                batch_size > (std::size_t(1) << 20)) {
                std::fprintf(stderr, "cali-query: invalid batch size '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--no-batch") {
            batched = false;
        } else if (arg == "--merge-strategy") {
            if (++i >= argc) {
                std::fprintf(stderr, "cali-query: missing argument for %s\n",
                             arg.c_str());
                return 2;
            }
            if (!calib::engine::parse_merge_strategy(argv[i], merge_strategy)) {
                std::fprintf(stderr, "cali-query: unknown merge strategy '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--max-groups-mem") {
            if (++i >= argc) {
                std::fprintf(stderr, "cali-query: missing argument for %s\n",
                             arg.c_str());
                return 2;
            }
            if (!calib::util::parse_size(argv[i], agg_mem)) {
                std::fprintf(stderr, "cali-query: invalid memory budget '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--stats-json") {
            if (++i >= argc) {
                std::fprintf(stderr, "cali-query: missing argument for %s\n",
                             arg.c_str());
                return 2;
            }
            stats_json = argv[i];
        } else if (arg == "--trace-json") {
            if (++i >= argc) {
                std::fprintf(stderr, "cali-query: missing argument for %s\n",
                             arg.c_str());
                return 2;
            }
            trace_json = argv[i];
        } else if (arg == "-v" || arg == "--verbose") {
            ++verbose;
        } else if (arg == "-vv") {
            verbose += 2;
        } else if (arg == "-j" || arg == "--json-input") {
            json_input = true;
        } else if (arg == "-G" || arg == "--with-globals") {
            with_globals = true;
        } else if (arg == "--no-mmap") {
            calib::FileBuffer::set_mmap_enabled(false);
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (arg == "-") {
            files.push_back(arg); // standard input
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "cali-query: unknown option %s\n", arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }

    if (files.empty() && connect.empty()) {
        usage();
        return 2;
    }

    if (verbose > 0)
        calib::Log::set_verbosity(verbose >= 2 ? calib::Log::Debug
                                               : calib::Log::Info);

    if (!connect.empty()) {
        // live mode: the daemon parses and evaluates the query over its
        // current channel aggregate and returns the formatted result
        if (!files.empty()) {
            std::fprintf(stderr,
                         "cali-query: --connect and input files are exclusive\n");
            return 2;
        }
        try {
            calib::net::ProxyClient::Options popts;
            popts.address     = connect;
            popts.channel     = channel;
            popts.client_name = "cali-query";
            popts.query_only  = true; // a typo'd --channel is an error,
                                      // not a fresh empty channel
            calib::net::ProxyClient client(popts);
            const std::string result = client.query(query);
            if (output.empty()) {
                std::cout << result;
            } else {
                std::ofstream os(output);
                if (!os) {
                    std::fprintf(stderr, "cali-query: cannot open %s\n",
                                 output.c_str());
                    return 1;
                }
                os << result;
            }
            client.close();
        } catch (const std::exception& e) {
            std::fprintf(stderr, "cali-query: %s\n", e.what());
            return 1;
        }
        return 0;
    }

    const bool self_profile = stats || !stats_json.empty();
    if (self_profile) {
        calib::obs::set_enabled(true);
        calib::obs::MetricsRegistry::instance().reset();
    }
    if (!trace_json.empty()) {
        calib::obs::set_trace_enabled(true);
        calib::obs::trace_reset();
    }

    try {
        calib::QuerySpec spec;
        {
            calib::obs::Phase parse_phase("parse");
            spec = calib::parse_calql(query);
        }
        calib::log_debug() << "query parsed: " << files.size() << " input file"
                           << (files.size() == 1 ? "" : "s");

        calib::engine::EngineOptions eopts;
        eopts.threads           = static_cast<std::size_t>(threads);
        eopts.json_input        = json_input;
        eopts.with_globals      = with_globals;
        eopts.batched           = batched;
        eopts.batch_size        = batch_size;
        eopts.agg_memory_budget = agg_mem;
        eopts.merge_strategy    = merge_strategy;

        calib::engine::ParallelQueryProcessor engine(spec, eopts);
        calib::QueryProcessor& proc = engine.run(files);

        {
            calib::obs::Phase sort_phase("sort");
            proc.result(); // flush + canonicalize + sort (idempotent)
        }

        calib::log_info() << proc.num_records_in() << " records in, "
                          << proc.num_records_kept() << " kept, "
                          << proc.result().size() << " out";

        // diagnose silently-inert clauses (unknown WHERE / GROUP BY /
        // AGGREGATE / ORDER BY attributes) now that the registry holds
        // every attribute the input defined
        for (const std::string& msg :
             calib::unknown_query_attributes(spec, *proc.registry()))
            calib::log_warn() << msg;

        {
            calib::obs::Phase format_phase("format");
            if (output.empty()) {
                proc.write(std::cout);
            } else {
                std::ofstream os(output);
                if (!os) {
                    std::fprintf(stderr, "cali-query: cannot open %s\n",
                                 output.c_str());
                    return 1;
                }
                proc.write(os);
            }
        }

        if (stats) {
            std::fprintf(stderr,
                         "cali-query: %llu records in, %llu kept, %zu out "
                         "(%zu threads, %zu morsels)\n",
                         static_cast<unsigned long long>(proc.num_records_in()),
                         static_cast<unsigned long long>(proc.num_records_kept()),
                         proc.result().size(), engine.stats().threads,
                         engine.stats().morsels);
            if (engine.stats().merge_strategy !=
                calib::engine::MergeStrategy::Default) {
                std::fprintf(
                    stderr, "cali-query: merge strategy %s, %.3f ms%s\n",
                    calib::engine::merge_strategy_name(
                        engine.stats().merge_strategy),
                    static_cast<double>(engine.stats().merge_ns) * 1e-6,
                    engine.stats().merge_partitions != 0
                        ? (" (" + std::to_string(engine.stats().merge_partitions) +
                           " partitions)")
                              .c_str()
                        : "");
            }
            calib::obs::write_stats_table(stderr);
        }
        if (!stats_json.empty() && !calib::obs::write_stats_json_file(stats_json))
            return 1;
        if (!trace_json.empty() &&
            !calib::obs::write_trace_json_file(trace_json))
            return 1;
    } catch (const calib::CalQLError& e) {
        std::fprintf(stderr, "cali-query: query error at position %zu: %s\n",
                     e.position(), e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "cali-query: %s\n", e.what());
        return 1;
    }
    return 0;
}
