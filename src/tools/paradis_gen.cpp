// paradis-gen: generate the synthetic ParaDiS-like distributed profile
// dataset used by the Figure-4 scalability experiments.
//
//   paradis-gen -n 64 -o /tmp/paradis-data
#include "../apps/paradis/generator.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

int main(int argc, char** argv) {
    int nranks = 16;
    std::string dir = "paradis-data";
    calib::paradis::ParadisConfig config;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (++i >= argc) {
                std::fprintf(stderr, "paradis-gen: missing argument for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[i];
        };
        if (arg == "-n" || arg == "--nranks")
            nranks = std::atoi(next());
        else if (arg == "-o" || arg == "--output")
            dir = next();
        else if (arg == "--records")
            config.records_per_file = std::atoi(next());
        else if (arg == "--kernels")
            config.num_kernels = std::atoi(next());
        else if (arg == "--mpi-functions")
            config.num_mpi_functions = std::atoi(next());
        else if (arg == "--seed")
            config.seed = std::strtoull(next(), nullptr, 0);
        else if (arg == "-h" || arg == "--help") {
            std::puts("usage: paradis-gen [-n nranks] [-o dir] [--records n]\n"
                      "                   [--kernels n] [--mpi-functions n] [--seed s]");
            return 0;
        } else {
            std::fprintf(stderr, "paradis-gen: unknown option %s\n", arg.c_str());
            return 2;
        }
    }

    try {
        const auto paths = calib::paradis::generate_dataset(dir, nranks, config);
        std::printf("paradis-gen: wrote %zu files (%d records each) to %s\n",
                    paths.size(), config.records_per_file, dir.c_str());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "paradis-gen: %s\n", e.what());
        return 1;
    }
    return 0;
}
