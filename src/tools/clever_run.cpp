// clever-run: run the CleverLeaf-sim mini-app under a Caliper measurement
// configuration and write per-rank .cali files.
//
//   clever-run -n 4 --steps 40
//     -P "services.enable=event,timer,aggregate,recorder
//         aggregate.key=*
//         recorder.filename=clever-%r.cali"
//
// The profile (-P) uses the runtime-config syntax; CALI_* environment
// variables are merged on top (paper §IV-A).
#include "../apps/cleverleaf/driver.hpp"
#include "../calib.hpp"
#include "../mpisim/online_reduce.hpp"
#include "../mpisim/runtime.hpp"

#include <cstdio>
#include <iostream>
#include <string>

int main(int argc, char** argv) {
    calib::clever::CleverConfig config;
    int nprocs          = 4;
    std::string report_query; // -R: online cross-process report at rank 0
    std::string profile = "services.enable=event,timer,aggregate,recorder\n"
                          "aggregate.key=*\n"
                          "recorder.filename=clever-%r.cali\n";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (++i >= argc) {
                std::fprintf(stderr, "clever-run: missing argument for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[i];
        };
        if (arg == "-n" || arg == "--nprocs")
            nprocs = std::atoi(next());
        else if (arg == "--steps")
            config.steps = std::atoi(next());
        else if (arg == "--nx")
            config.nx = std::atoi(next());
        else if (arg == "--ny")
            config.ny = std::atoi(next());
        else if (arg == "--levels")
            config.amr.levels = std::atoi(next());
        else if (arg == "--no-annotations")
            config.annotate = false;
        else if (arg == "-P" || arg == "--profile")
            profile = next();
        else if (arg == "-R" || arg == "--report")
            report_query = next();
        else if (arg == "-h" || arg == "--help") {
            std::puts("usage: clever-run [-n nprocs] [--steps n] [--nx n] [--ny n]\n"
                      "                  [--levels n] [--no-annotations] [-P profile]\n"
                      "                  [-R calql]  online cross-process report");
            return 0;
        } else {
            std::fprintf(stderr, "clever-run: unknown option %s\n", arg.c_str());
            return 2;
        }
    }

    try {
        calib::RuntimeConfig cfg = calib::RuntimeConfig::from_string(profile)
                                       .merged_with(calib::RuntimeConfig::from_env());
        calib::Caliper& c      = calib::Caliper::instance();
        calib::Channel* channel = c.create_channel("clever-run", cfg);

        double checksum = 0.0;
        std::uint64_t updates = 0;
        std::mutex m;
        calib::simmpi::run(nprocs, [&](calib::simmpi::Comm& comm) {
            calib::clever::CleverStats stats = calib::clever::run_rank(comm, config);
            c.flush_thread(channel); // per-rank output file (recorder)
            if (!report_query.empty()) {
                // online cross-process aggregation: merge the per-rank
                // databases up a binomial tree, report at rank 0
                auto merged = calib::simmpi::reduce_channel(comm, channel, 0);
                if (comm.rank() == 0) {
                    std::lock_guard<std::mutex> lock(m);
                    std::printf("== online cross-process report ==\n");
                    calib::run_query(report_query, merged, std::cout);
                }
            }
            std::lock_guard<std::mutex> lock(m);
            checksum += stats.checksum;
            updates += stats.cell_updates;
        });

        c.close_channel(channel);
        std::printf("clever-run: %d ranks, %d steps, checksum %.6f, "
                    "%llu cell updates\n",
                    nprocs, config.steps, checksum,
                    static_cast<unsigned long long>(updates));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "clever-run: %s\n", e.what());
        return 1;
    }
    return 0;
}
