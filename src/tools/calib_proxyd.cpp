// calib-proxyd: the always-on multi-client aggregation daemon.
//
//   calib-proxyd --listen /tmp/calib-proxyd.sock --http :9090
//
// Accepts streaming snapshot/metric traffic from concurrent clients
// (calib-push, the runtime's proxy service, or ProxyClient users), folds
// it into shared per-channel aggregation databases, answers live CalQL
// queries over the socket (cali-query --connect), and serves a
// Prometheus-style plaintext scrape endpoint over HTTP.
//
// SIGINT/SIGTERM shut the daemon down gracefully: listeners close,
// existing connections drain, buffered frames are folded in, and (with
// --flush-output) every channel's final aggregate is written to a .cali
// file before exit.
#include "../proxyd/daemon.hpp"

#include "../common/log.hpp"
#include "../common/util.hpp"
#include "../obs/metrics.hpp"
#include "../obs/report.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

namespace {

void usage() {
    std::puts(
        "usage: calib-proxyd --listen <addr> [options]\n"
        "\n"
        "addresses are unix socket paths (contain '/' or a 'unix:' prefix)\n"
        "or TCP host:port pairs (':0' lets the kernel pick a port)\n"
        "\n"
        "options:\n"
        "  -l, --listen <addr>      ingest address (required)\n"
        "      --listen-tcp <addr>  additional TCP ingest listener\n"
        "      --http <addr>        HTTP scrape endpoint (/metrics, /healthz)\n"
        "  -a, --aggregate <calql>  per-channel aggregation clause, e.g.\n"
        "                           \"AGGREGATE sum(val),count GROUP BY kernel\";\n"
        "                           default: exact mode (channels hold the\n"
        "                           exact record multiset; any query answers\n"
        "                           as offline cali-query would)\n"
        "  -o, --flush-output <pat> write each channel's aggregate to <pat>\n"
        "                           on shutdown; '%c' expands to the channel\n"
        "  -w, --window <dur>       keep only the trailing <dur> of traffic\n"
        "                           per channel (arrival time); queries and\n"
        "                           scrapes answer over the live window.\n"
        "                           durations take us/ms/s/m/h suffixes\n"
        "      --slide <dur>        window pane width (default: tumbling,\n"
        "                           i.e. the window duration)\n"
        "      --drain-timeout <ms> shutdown drain deadline (default 5000)\n"
        "      --max-frame <bytes>  per-frame payload bound (default 4 MiB)\n"
        "      --max-tx <bytes>     per-connection outbound bound (default 8 MiB)\n"
        "  -s, --stats              print the self-metrics table on exit\n"
        "  -v, --verbose            more diagnostics on stderr\n"
        "  -h, --help               show this message");
}

calib::proxyd::ProxyDaemon* g_daemon = nullptr;

void on_signal(int) {
    if (g_daemon)
        g_daemon->stop(); // one eventfd write; async-signal-safe
}

using calib::util::parse_size;

} // namespace

int main(int argc, char** argv) {
    calib::proxyd::DaemonOptions opts;
    std::string flush_output;
    bool stats  = false;
    int verbose = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto need_value = [&]() -> const char* {
            if (++i >= argc) {
                std::fprintf(stderr, "calib-proxyd: missing argument for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[i];
        };
        if (arg == "-l" || arg == "--listen") {
            opts.listen = need_value();
        } else if (arg == "--listen-tcp") {
            opts.listen_tcp = need_value();
        } else if (arg == "--http") {
            opts.http = need_value();
        } else if (arg == "-a" || arg == "--aggregate") {
            opts.aggregate = need_value();
        } else if (arg == "-o" || arg == "--flush-output") {
            flush_output = need_value();
        } else if (arg == "-w" || arg == "--window") {
            if (!calib::util::parse_duration(need_value(), opts.window_us) ||
                opts.window_us == 0) {
                std::fprintf(stderr,
                             "calib-proxyd: bad --window duration "
                             "(digits with optional us/ms/s/m/h suffix)\n");
                return 2;
            }
        } else if (arg == "--slide") {
            if (!calib::util::parse_duration(need_value(), opts.slide_us) ||
                opts.slide_us == 0) {
                std::fprintf(stderr,
                             "calib-proxyd: bad --slide duration "
                             "(digits with optional us/ms/s/m/h suffix)\n");
                return 2;
            }
        } else if (arg == "--drain-timeout") {
            std::size_t ms = 0;
            if (!parse_size(need_value(), ms) || ms == 0 ||
                ms > static_cast<std::size_t>(std::numeric_limits<int>::max())) {
                std::fprintf(stderr,
                             "calib-proxyd: bad --drain-timeout value\n");
                return 2;
            }
            opts.drain_timeout_ms = static_cast<int>(ms);
        } else if (arg == "--max-frame") {
            if (!parse_size(need_value(), opts.max_frame_bytes)) {
                std::fprintf(stderr, "calib-proxyd: bad --max-frame value\n");
                return 2;
            }
        } else if (arg == "--max-tx") {
            if (!parse_size(need_value(), opts.max_tx_bytes)) {
                std::fprintf(stderr, "calib-proxyd: bad --max-tx value\n");
                return 2;
            }
        } else if (arg == "-s" || arg == "--stats") {
            stats = true;
        } else if (arg == "-v" || arg == "--verbose") {
            ++verbose;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "calib-proxyd: unknown option %s\n", arg.c_str());
            return 2;
        }
    }

    if (opts.listen.empty()) {
        usage();
        return 2;
    }
    if (opts.slide_us > 0 && opts.window_us == 0) {
        std::fprintf(stderr, "calib-proxyd: --slide requires --window\n");
        return 2;
    }
    if (opts.slide_us > opts.window_us) {
        std::fprintf(stderr,
                     "calib-proxyd: --slide is larger than --window\n");
        return 2;
    }
    if (verbose > 0)
        calib::Log::set_verbosity(verbose >= 2 ? calib::Log::Debug
                                               : calib::Log::Info);

    // the daemon self-instruments; its metrics feed the scrape endpoint
    calib::obs::set_enabled(true);

    try {
        calib::proxyd::ProxyDaemon daemon(opts);
        daemon.start();

        g_daemon = &daemon;
        struct sigaction sa {};
        sa.sa_handler = on_signal;
        sigaction(SIGINT, &sa, nullptr);
        sigaction(SIGTERM, &sa, nullptr);

        std::fprintf(stderr, "calib-proxyd: listening on %s%s%s%s%s\n",
                     daemon.ingest_address().c_str(),
                     daemon.tcp_address().empty() ? "" : ", tcp ",
                     daemon.tcp_address().c_str(),
                     daemon.http_address().empty() ? "" : ", http ",
                     daemon.http_address().c_str());

        daemon.run();
        g_daemon = nullptr;

        if (!flush_output.empty())
            daemon.write_flush_files(flush_output);

        const auto s = daemon.stats();
        std::fprintf(stderr,
                     "calib-proxyd: %llu connections, %llu records, "
                     "%llu http requests, %llu shed\n",
                     static_cast<unsigned long long>(s.connections_total),
                     static_cast<unsigned long long>(s.records),
                     static_cast<unsigned long long>(s.http_requests),
                     static_cast<unsigned long long>(s.shed_connections));
        if (stats)
            calib::obs::write_stats_table(stderr);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "calib-proxyd: %s\n", e.what());
        return 1;
    }
    return 0;
}
