// calib-push: stream .cali files to a running calib-proxyd daemon.
//
//   calib-push --connect /tmp/calib-proxyd.sock a.cali b.cali
//
// Reads each input with the resolve-once id-based reader and pushes every
// record over one connection, so attribute names (with their types and
// properties) travel exactly once. With --with-globals, each file's
// dataset globals are sent before its records and joined onto them by the
// daemon — the streaming analogue of cali-query -G.
//
// Exit status 0 guarantees the records are folded into the daemon's
// aggregate (the push ends with a query ack), so scripts can push from
// several processes, wait, and then query without racing the daemon.
#include "../io/calireader.hpp"
#include "../net/client.hpp"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

void usage() {
    std::puts(
        "usage: calib-push --connect <addr> [options] <file.cali>...\n"
        "\n"
        "options:\n"
        "  -c, --connect <addr>   daemon address (unix path or host:port)\n"
        "      --channel <name>   daemon channel to push into (default: default)\n"
        "  -G, --with-globals     send each file's dataset globals; the daemon\n"
        "                         joins them onto that file's records\n"
        "  -h, --help             show this message");
}

} // namespace

int main(int argc, char** argv) {
    std::string address;
    std::string channel = "default";
    bool with_globals   = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-c" || arg == "--connect") {
            if (++i >= argc) {
                std::fprintf(stderr, "calib-push: missing argument for %s\n",
                             arg.c_str());
                return 2;
            }
            address = argv[i];
        } else if (arg == "--channel") {
            if (++i >= argc) {
                std::fprintf(stderr, "calib-push: missing argument for %s\n",
                             arg.c_str());
                return 2;
            }
            channel = argv[i];
        } else if (arg == "-G" || arg == "--with-globals") {
            with_globals = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::fprintf(stderr, "calib-push: unknown option %s\n", arg.c_str());
            return 2;
        } else {
            files.push_back(arg);
        }
    }

    if (address.empty() || files.empty()) {
        usage();
        return 2;
    }

    try {
        calib::net::ProxyClient::Options opts;
        opts.address     = address;
        opts.channel     = channel;
        opts.client_name = "calib-push";
        calib::net::ProxyClient client(opts);

        // one registry for the whole connection: attribute definitions hit
        // the wire once even when every input file redefines them
        calib::AttributeRegistry registry;

        for (const std::string& file : files) {
            if (with_globals) {
                calib::CaliFileSource source(file, /*target_chunk_bytes=*/1u << 30);
                calib::IdRecord globals = source.read_globals(registry);
                client.set_globals(calib::to_recordmap(globals, registry),
                                   /*join=*/true);
                for (std::size_t c = 0; c < source.chunks().size(); ++c)
                    source.read_chunk(c, registry, [&](calib::IdRecord&& rec) {
                        client.push(registry, rec);
                    });
            } else {
                calib::CaliReader::read_file(file, registry,
                                             [&](calib::IdRecord&& rec) {
                                                 client.push(registry, rec);
                                             });
            }
        }

        client.flush();
        // delivery barrier: the daemon answers queries on a connection only
        // after folding every record it received on it, so a successful exit
        // guarantees the records are aggregated, not merely written to the
        // socket (a later query from another connection will see them)
        client.query("AGGREGATE count FORMAT csv");
        std::fprintf(stderr,
                     "calib-push: %llu records in %llu frames (%llu bytes) to %s\n",
                     static_cast<unsigned long long>(client.records_sent()),
                     static_cast<unsigned long long>(client.frames_sent()),
                     static_cast<unsigned long long>(client.bytes_sent()),
                     address.c_str());
        client.close();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "calib-push: %s\n", e.what());
        return 1;
    }
    return 0;
}
