#include "driver.hpp"

#include "../../runtime/annotation.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace calib::clever {

namespace {

/// Bundle of the annotation handles used throughout a run. Annotations are
/// resolved once; when config.annotate is false, all marks are no-ops.
struct Marks {
    bool enabled;
    Annotation function{"function"};
    Annotation region{"annotation"};
    Annotation kernel{"kernel"};
    Annotation level{"amr.level"};
    Annotation iteration{"iteration#mainloop", prop::as_value};

    explicit Marks(bool enabled) : enabled(enabled) {}

    void begin(Annotation& a, const Variant& v) {
        if (enabled)
            a.begin(v);
    }
    void end(Annotation& a) {
        if (enabled)
            a.end();
    }
    void set(Annotation& a, const Variant& v) {
        if (enabled)
            a.set(v);
    }
};

/// RAII kernel region.
struct KernelScope {
    Marks& m;
    KernelScope(Marks& m, const char* name) : m(m) {
        m.begin(m.kernel, Variant(std::string_view(name)));
    }
    ~KernelScope() { m.end(m.kernel); }
};

struct FunctionScope {
    Marks& m;
    FunctionScope(Marks& m, const char* name) : m(m) {
        m.begin(m.function, Variant(std::string_view(name)));
    }
    ~FunctionScope() { m.end(m.function); }
};

struct RegionScope {
    Marks& m;
    RegionScope(Marks& m, const char* name) : m(m) {
        m.begin(m.region, Variant(std::string_view(name)));
    }
    ~RegionScope() { m.end(m.region); }
};

/// Exchange level-0 strip boundary rows with the neighboring ranks and
/// blend them into the edge cells (keeps ranks coupled; the averaging is
/// dissipative, hence stable).
void halo_exchange(Marks& marks, simmpi::CaliComm& comm, Patch& p) {
    FunctionScope fn(marks, "halo_exchange");
    const int rank = comm.rank();
    const int size = comm.size();
    if (size == 1)
        return;

    const std::size_t row_doubles = static_cast<std::size_t>(p.nx) * 4;
    std::vector<double> send_lo(row_doubles), send_hi(row_doubles),
        recv_row(row_doubles);

    auto pack_row = [&](int j, std::vector<double>& buf) {
        for (int i = 0; i < p.nx; ++i) {
            buf[i * 4 + 0] = p.rho.at(i, j);
            buf[i * 4 + 1] = p.mx.at(i, j);
            buf[i * 4 + 2] = p.my.at(i, j);
            buf[i * 4 + 3] = p.energy.at(i, j);
        }
    };
    auto blend_row = [&](int j, const std::vector<double>& buf) {
        for (int i = 0; i < p.nx; ++i) {
            p.rho.at(i, j)    = 0.5 * (p.rho.at(i, j) + buf[i * 4 + 0]);
            p.mx.at(i, j)     = 0.5 * (p.mx.at(i, j) + buf[i * 4 + 1]);
            p.my.at(i, j)     = 0.5 * (p.my.at(i, j) + buf[i * 4 + 2]);
            p.energy.at(i, j) = 0.5 * (p.energy.at(i, j) + buf[i * 4 + 3]);
        }
    };
    auto as_bytes = [](const std::vector<double>& v) {
        return std::span(reinterpret_cast<const std::byte*>(v.data()),
                         v.size() * sizeof(double));
    };
    auto from_bytes = [&recv_row](const std::vector<std::byte>& bytes) {
        std::memcpy(recv_row.data(), bytes.data(),
                    std::min(bytes.size(), recv_row.size() * sizeof(double)));
    };

    // post both boundary sends first, then receive: no serial dependency
    // chain down the rank order (the classic exchange pattern)
    if (rank > 0) {
        pack_row(0, send_lo);
        comm.send(rank - 1, 100, as_bytes(send_lo));
    }
    if (rank < size - 1) {
        pack_row(p.ny - 1, send_hi);
        comm.send(rank + 1, 100, as_bytes(send_hi));
    }
    if (rank > 0) {
        from_bytes(comm.recv(rank - 1, 100).payload);
        blend_row(0, recv_row);
    }
    if (rank < size - 1) {
        from_bytes(comm.recv(rank + 1, 100).payload);
        blend_row(p.ny - 1, recv_row);
    }
}

/// One hydro update of a single patch (kernels annotated individually).
void advance_patch(Marks& marks, Patch& p, double dt, CleverStats& stats) {
    {
        KernelScope k(marks, "ideal-gas");
        kernel_ideal_gas(p);
    }
    {
        KernelScope k(marks, "viscosity");
        kernel_viscosity(p);
    }
    // the flux computation is deliberately *not* annotated (see Fig. 5:
    // "most samples were accumulated outside of the annotated kernels")
    compute_fluxes(p);
    {
        KernelScope k(marks, "advec-cell");
        kernel_advec_cell(p, dt);
    }
    {
        KernelScope k(marks, "advec-mom");
        kernel_advec_mom(p, dt);
    }
    {
        KernelScope k(marks, "pdv");
        kernel_pdv(p, dt);
    }
    {
        KernelScope k(marks, "accelerate");
        kernel_accelerate(p, dt);
    }
    {
        KernelScope k(marks, "reset");
        kernel_reset(p);
    }
    stats.cell_updates += p.cells();
}

double compute_timestep(Marks& marks, simmpi::CaliComm& comm, const Hierarchy& mesh) {
    // calc-dt sweeps *all* refinement levels (the global CFL condition for
    // the hierarchy) and includes the global reduction, as in CleverLeaf:
    // the minimum must be agreed across ranks before anyone advances.
    KernelScope k(marks, "calc-dt");
    double local_dt = 1e30;
    for (int l = 0; l < mesh.num_levels(); ++l)
        for (const auto& patch : mesh.level(l))
            local_dt = std::min(local_dt, kernel_calc_dt(*patch) * (1 << l));
    return comm.allreduce(local_dt, simmpi::Comm::ReduceOp::Min);
}

void write_output(Marks& marks, simmpi::CaliComm& comm, const Hierarchy& mesh) {
    FunctionScope fn(marks, "write_output");
    RegionScope region(marks, "io");
    double checksum = 0.0;
    for (const auto& p : mesh.level(0))
        checksum += patch_checksum(*p);
    // gather per-rank checksums to rank 0 (stands in for parallel output)
    comm.gather(std::span(reinterpret_cast<const std::byte*>(&checksum),
                          sizeof(checksum)),
                0);
}

} // namespace

CleverStats run_rank(simmpi::Comm& raw_comm, const CleverConfig& config) {
    simmpi::CaliComm comm(raw_comm);
    Marks marks(config.annotate);
    CleverStats stats;

    const int rank = comm.rank();
    const int size = comm.size();

    // --- initialization -------------------------------------------------------
    std::unique_ptr<Hierarchy> mesh;
    {
        FunctionScope fn(marks, "initialize");
        RegionScope region(marks, "init");

        // y-strip decomposition of the global coarse grid
        const int rows = config.ny / size;
        const int j0   = rank * rows;
        const int j1   = (rank == size - 1) ? config.ny : j0 + rows;
        const double dx = config.domain_w / config.nx;
        const double dy = config.domain_h / config.ny;

        auto strip = std::make_unique<Patch>(0, 0, j0, config.nx, j1 - j0, dx, dy);
        init_triple_point(*strip, config.domain_w, config.domain_h);
        kernel_ideal_gas(*strip);

        mesh = std::make_unique<Hierarchy>(std::move(strip), config.amr);
        mesh->regrid();
    }
    comm.barrier();

    // --- main loop -------------------------------------------------------------
    double sim_time = 0.0;
    for (int step = 0; step < config.steps; ++step) {
        marks.set(marks.iteration, Variant(static_cast<long long>(step)));
        FunctionScope fn(marks, "hydro_step");
        RegionScope region(marks, "computation");

        const double dt = compute_timestep(marks, comm, *mesh);

        halo_exchange(marks, comm, *mesh->level(0)[0]);

        // advance each level; finer levels subcycle (2^l substeps of dt/2^l)
        for (int l = 0; l < mesh->num_levels(); ++l) {
            marks.begin(marks.level, Variant(static_cast<long long>(l)));
            const int substeps = 1 << l;
            const double dt_l  = dt / substeps;
            for (int s = 0; s < substeps; ++s)
                for (auto& patch : mesh->level(l))
                    advance_patch(marks, *patch, dt_l, stats);
            marks.end(marks.level);
        }

        // optional artificial skew: extra smoothing work on rank 0
        if (config.imbalance > 0.0 && rank == 0) {
            const int extra =
                static_cast<int>(config.imbalance * mesh->num_levels());
            for (int e = 0; e < extra; ++e)
                kernel_ideal_gas(*mesh->level(0)[0]);
        }

        if ((step + 1) % config.regrid_interval == 0) {
            FunctionScope regrid_fn(marks, "do_regrid");
            RegionScope regrid_region(marks, "regrid");
            mesh->regrid();
        }
        if ((step + 1) % config.io_interval == 0)
            write_output(marks, comm, *mesh);

        comm.barrier(); // end-of-step synchronization (CleverLeaf-style)
        sim_time += dt;
    }

    // --- wrap-up ----------------------------------------------------------------
    stats.steps    = config.steps;
    stats.sim_time = sim_time;
    for (const auto& p : mesh->level(0))
        stats.checksum += patch_checksum(*p);
    stats.cells_final = mesh->total_cells();
    for (int l = 0; l < mesh->num_levels(); ++l)
        stats.patches_final += mesh->level(l).size();
    return stats;
}

} // namespace calib::clever
