// CleverLeaf-sim driver: runs the AMR hydro mini-app on simmpi ranks with
// full Caliper instrumentation (paper §V-B / §VI-A):
//
//   function            driver functions (initialize, hydro_step, ...)
//   annotation          user regions: init, computation, regrid, io
//   kernel              computational kernels (ideal-gas, calc-dt, ...)
//   amr.level           mesh refinement level being processed (nested)
//   iteration#mainloop  simulation timestep (value)
//   mpi.function        intercepted communication calls (CaliComm wrapper)
//   mpi.rank            the rank id
//
// Seven attributes in total, matching the paper's experiment setup.
#pragma once

#include "amr.hpp"

#include "../../mpisim/wrapper.hpp"

#include <cstdint>
#include <string>

namespace calib::clever {

struct CleverConfig {
    int nx    = 224; ///< global coarse cells in x (paper: 640)
    int ny    = 96;  ///< global coarse cells in y (paper: 240)
    int steps = 40;  ///< main loop timesteps (paper: 100)
    double domain_w = 7.0;
    double domain_h = 3.0;

    AmrConfig amr; ///< three refinement levels by default

    int regrid_interval = 5;
    int io_interval     = 20;
    bool annotate       = true; ///< emit Caliper annotations

    /// Artificial per-rank load skew (0 = homogeneous); adds extra smoothing
    /// passes on one rank to exercise the load-balance analysis when the
    /// physics itself is too symmetric.
    double imbalance = 0.0;
};

struct CleverStats {
    double checksum     = 0.0;
    double sim_time     = 0.0;
    int steps           = 0;
    std::size_t cells_final    = 0;
    std::size_t patches_final  = 0;
    std::uint64_t cell_updates = 0;
};

/// Run the mini-app on one simmpi rank (call from inside simmpi::run()).
/// The global grid is decomposed into y-strips, one per rank.
CleverStats run_rank(simmpi::Comm& comm, const CleverConfig& config);

} // namespace calib::clever
