#include "hydro.hpp"

#include <algorithm>
#include <cmath>

namespace calib::clever {

namespace {
constexpr double gamma_gas = 1.4;
constexpr double cfl       = 0.4;
constexpr double rho_floor = 1e-8;
constexpr double e_floor   = 1e-10;
} // namespace

Patch::Patch(int level, int x0, int y0, int nx, int ny, double dx, double dy)
    : level(level), x0(x0), y0(y0), nx(nx), ny(ny), dx(dx), dy(dy),
      rho(nx, ny), mx(nx, ny), my(nx, ny), energy(nx, ny), pressure(nx, ny),
      soundspeed(nx, ny), wavespeed(nx, ny), velx(nx, ny), vely(nx, ny),
      rho_new(nx, ny), mx_new(nx, ny), my_new(nx, ny), energy_new(nx, ny),
      flux_x(nx + 1, ny, 4), flux_y(nx, ny + 1, 4) {}

void init_triple_point(Patch& p, double domain_w, double domain_h) {
    // Triple-point shock interaction (Galera et al. [8]): a high-pressure
    // driver on the left, two materials of different density on the right.
    for (int j = 0; j < p.ny; ++j) {
        for (int i = 0; i < p.nx; ++i) {
            const double x = (p.x0 + i + 0.5) * p.dx;
            const double y = (p.y0 + j + 0.5) * p.dy;
            double rho, pres;
            if (x < domain_w / 7.0) {
                rho  = 1.0;
                pres = 1.0;
            } else if (y < domain_h / 2.0) {
                rho  = 1.0;
                pres = 0.1;
            } else {
                rho  = 0.125;
                pres = 0.1;
            }
            p.rho.at(i, j)    = rho;
            p.mx.at(i, j)     = 0.0;
            p.my.at(i, j)     = 0.0;
            p.energy.at(i, j) = pres / (gamma_gas - 1.0); // total energy (v=0)
        }
    }
}

void kernel_ideal_gas(Patch& p) {
    // EOS: primitive recovery + pressure and sound speed from conserved state.
    for (int j = 0; j < p.ny; ++j) {
        for (int i = 0; i < p.nx; ++i) {
            const double rho = std::max(p.rho.at(i, j), rho_floor);
            const double u   = p.mx.at(i, j) / rho;
            const double v   = p.my.at(i, j) / rho;
            const double e_int =
                std::max(p.energy.at(i, j) - 0.5 * rho * (u * u + v * v), e_floor);
            const double pres       = (gamma_gas - 1.0) * e_int;
            p.velx.at(i, j)       = u;
            p.vely.at(i, j)       = v;
            p.pressure.at(i, j)   = pres;
            p.soundspeed.at(i, j) = std::sqrt(gamma_gas * pres / rho);
        }
    }
}

void kernel_viscosity(Patch& p) {
    // Local maximum signal speed per cell: the dissipation coefficient of
    // the Rusanov flux (plays the role of CleverLeaf's artificial
    // viscosity in stabilizing the scheme).
    for (int j = 0; j < p.ny; ++j)
        for (int i = 0; i < p.nx; ++i)
            p.wavespeed.at(i, j) =
                std::abs(p.velx.at(i, j)) + std::abs(p.vely.at(i, j)) +
                p.soundspeed.at(i, j);
}

double kernel_calc_dt(const Patch& p) {
    // The CFL check recovers primitives from the *current* conserved state
    // itself (like CleverLeaf's calc_dt, which re-evaluates the EOS), so it
    // does not depend on stale ideal-gas results after an update.
    double dt = 1e30;
    for (int j = 0; j < p.ny; ++j) {
        for (int i = 0; i < p.nx; ++i) {
            const double rho = std::max(p.rho.at(i, j), rho_floor);
            const double u   = p.mx.at(i, j) / rho;
            const double v   = p.my.at(i, j) / rho;
            const double e_int =
                std::max(p.energy.at(i, j) - 0.5 * rho * (u * u + v * v), e_floor);
            const double c = std::sqrt(gamma_gas * (gamma_gas - 1.0) * e_int / rho);
            const double cx = std::abs(u) + c;
            const double cy = std::abs(v) + c;
            dt = std::min(dt, cfl / (cx / p.dx + cy / p.dy + 1e-30));
        }
    }
    return dt;
}

namespace {

struct State {
    double rho, mx, my, e, p, a;
};

State cell_state(const Patch& p, int i, int j) {
    // reflective boundaries: clamp the stencil inside the patch
    i = std::clamp(i, 0, p.nx - 1);
    j = std::clamp(j, 0, p.ny - 1);
    return {p.rho.at(i, j),      p.mx.at(i, j),       p.my.at(i, j),
            p.energy.at(i, j),   p.pressure.at(i, j), p.wavespeed.at(i, j)};
}

/// Rusanov flux through an x-face between left and right states.
void rusanov_x(const State& l, const State& r, double* flux) {
    const double ul = l.mx / std::max(l.rho, rho_floor);
    const double ur = r.mx / std::max(r.rho, rho_floor);
    const double a  = std::max(l.a, r.a);
    flux[0] = 0.5 * (l.mx + r.mx) - 0.5 * a * (r.rho - l.rho);
    flux[1] = 0.5 * (l.mx * ul + l.p + r.mx * ur + r.p) - 0.5 * a * (r.mx - l.mx);
    flux[2] = 0.5 * (l.my * ul + r.my * ur) - 0.5 * a * (r.my - l.my);
    flux[3] = 0.5 * ((l.e + l.p) * ul + (r.e + r.p) * ur) - 0.5 * a * (r.e - l.e);
}

/// Rusanov flux through a y-face between bottom and top states.
void rusanov_y(const State& b, const State& t, double* flux) {
    const double vb = b.my / std::max(b.rho, rho_floor);
    const double vt = t.my / std::max(t.rho, rho_floor);
    const double a  = std::max(b.a, t.a);
    flux[0] = 0.5 * (b.my + t.my) - 0.5 * a * (t.rho - b.rho);
    flux[1] = 0.5 * (b.mx * vb + t.mx * vt) - 0.5 * a * (t.mx - b.mx);
    flux[2] = 0.5 * (b.my * vb + b.p + t.my * vt + t.p) - 0.5 * a * (t.my - b.my);
    flux[3] = 0.5 * ((b.e + b.p) * vb + (t.e + t.p) * vt) - 0.5 * a * (t.e - b.e);
}

} // namespace

namespace {

/// Reflective wall ghost states: mirror the boundary cell with the normal
/// momentum negated, so mass and energy flux through walls is exactly zero.
State mirror_x(State s) {
    s.mx = -s.mx;
    return s;
}
State mirror_y(State s) {
    s.my = -s.my;
    return s;
}

} // namespace

void compute_fluxes(Patch& p) {
    // NOTE: deliberately *not* exported as an annotated kernel by the
    // driver — this is the "other computation" of the paper's Figure 5.
    double f[4];
    for (int j = 0; j < p.ny; ++j) {
        for (int i = 0; i <= p.nx; ++i) {
            const State l = i == 0 ? mirror_x(cell_state(p, 0, j))
                                   : cell_state(p, i - 1, j);
            const State r = i == p.nx ? mirror_x(cell_state(p, p.nx - 1, j))
                                      : cell_state(p, i, j);
            rusanov_x(l, r, f);
            p.flux_x.at(i, j, 0) = f[0];
            p.flux_x.at(i, j, 1) = f[1];
            p.flux_x.at(i, j, 2) = f[2];
            p.flux_x.at(i, j, 3) = f[3];
        }
    }
    for (int j = 0; j <= p.ny; ++j) {
        for (int i = 0; i < p.nx; ++i) {
            const State b = j == 0 ? mirror_y(cell_state(p, i, 0))
                                   : cell_state(p, i, j - 1);
            const State t = j == p.ny ? mirror_y(cell_state(p, i, p.ny - 1))
                                      : cell_state(p, i, j);
            rusanov_y(b, t, f);
            p.flux_y.at(i, j, 0) = f[0];
            p.flux_y.at(i, j, 1) = f[1];
            p.flux_y.at(i, j, 2) = f[2];
            p.flux_y.at(i, j, 3) = f[3];
        }
    }
}

void kernel_advec_cell(Patch& p, double dt) {
    // density and energy update from face fluxes
    const double cx = dt / p.dx, cy = dt / p.dy;
    for (int j = 0; j < p.ny; ++j) {
        for (int i = 0; i < p.nx; ++i) {
            p.rho_new.at(i, j) =
                p.rho.at(i, j) -
                cx * (p.flux_x.at(i + 1, j, 0) - p.flux_x.at(i, j, 0)) -
                cy * (p.flux_y.at(i, j + 1, 0) - p.flux_y.at(i, j, 0));
            p.energy_new.at(i, j) =
                p.energy.at(i, j) -
                cx * (p.flux_x.at(i + 1, j, 3) - p.flux_x.at(i, j, 3)) -
                cy * (p.flux_y.at(i, j + 1, 3) - p.flux_y.at(i, j, 3));
        }
    }
}

void kernel_advec_mom(Patch& p, double dt) {
    // momentum update from face fluxes
    const double cx = dt / p.dx, cy = dt / p.dy;
    for (int j = 0; j < p.ny; ++j) {
        for (int i = 0; i < p.nx; ++i) {
            p.mx_new.at(i, j) =
                p.mx.at(i, j) -
                cx * (p.flux_x.at(i + 1, j, 1) - p.flux_x.at(i, j, 1)) -
                cy * (p.flux_y.at(i, j + 1, 1) - p.flux_y.at(i, j, 1));
            p.my_new.at(i, j) =
                p.my.at(i, j) -
                cx * (p.flux_x.at(i + 1, j, 2) - p.flux_x.at(i, j, 2)) -
                cy * (p.flux_y.at(i, j + 1, 2) - p.flux_y.at(i, j, 2));
        }
    }
}

void kernel_pdv(Patch& p, double dt) {
    // diagnostic pressure-work accumulation (CleverLeaf's PdV step);
    // the conservative update already carries the pressure terms, so this
    // tracks the work done per cell for energy accounting.
    double work = 0.0;
    const double c = dt / (p.dx * p.dy);
    for (int j = 0; j < p.ny; ++j)
        for (int i = 0; i < p.nx; ++i)
            work += c * p.pressure.at(i, j) *
                    (p.velx.at(std::min(i + 1, p.nx - 1), j) -
                     p.velx.at(std::max(i - 1, 0), j) +
                     p.vely.at(i, std::min(j + 1, p.ny - 1)) -
                     p.vely.at(i, std::max(j - 1, 0)));
    p.pdv_work += work;
}

void kernel_accelerate(Patch& p, double dt) {
    // node-centered acceleration diagnostic from the pressure gradient
    const double gx = dt / (2.0 * p.dx), gy = dt / (2.0 * p.dy);
    double accel = 0.0;
    for (int j = 0; j < p.ny; ++j) {
        for (int i = 0; i < p.nx; ++i) {
            const double dpx = p.pressure.at(std::min(i + 1, p.nx - 1), j) -
                               p.pressure.at(std::max(i - 1, 0), j);
            const double dpy = p.pressure.at(i, std::min(j + 1, p.ny - 1)) -
                               p.pressure.at(i, std::max(j - 1, 0));
            accel += std::abs(gx * dpx) + std::abs(gy * dpy);
        }
    }
    p.accel_sum += accel;
}

void kernel_reset(Patch& p) {
    p.rho.swap_data(p.rho_new);
    p.mx.swap_data(p.mx_new);
    p.my.swap_data(p.my_new);
    p.energy.swap_data(p.energy_new);
    // enforce physical floors after the update
    for (int j = 0; j < p.ny; ++j) {
        for (int i = 0; i < p.nx; ++i) {
            if (p.rho.at(i, j) < rho_floor)
                p.rho.at(i, j) = rho_floor;
            if (p.energy.at(i, j) < e_floor)
                p.energy.at(i, j) = e_floor;
        }
    }
}

void kernel_revert(Patch& p) {
    p.rho_new.copy_from(p.rho);
    p.mx_new.copy_from(p.mx);
    p.my_new.copy_from(p.my);
    p.energy_new.copy_from(p.energy);
}

double patch_checksum(const Patch& p) {
    double sum = 0.0;
    for (int j = 0; j < p.ny; ++j)
        for (int i = 0; i < p.nx; ++i)
            sum += p.rho.at(i, j) + p.energy.at(i, j);
    return sum;
}

} // namespace calib::clever
