// Block-structured adaptive mesh refinement for CleverLeaf-sim
// (paper §VI-A: SAMRAI-style patch AMR with three levels, refining the
// complex shock-interaction region).
//
// Tagging: cells whose density jump to a neighbor exceeds a threshold are
// flagged (plus a buffer). Clustering: a simplified Berger–Rigoutsos
// bisection produces rectangular patch boxes over the flagged region.
// Fine patches are initialized by injection from their coarse parent.
#pragma once

#include "hydro.hpp"

#include <cstddef>
#include <memory>
#include <vector>

namespace calib::clever {

struct AmrConfig {
    int levels            = 3;
    int refinement_ratio  = 2;
    double tag_threshold  = 0.08; ///< relative density jump that flags a cell
    int tag_buffer        = 2;    ///< flagged-region buffer in cells
    int max_patch_size    = 96;   ///< max patch extent per dimension (cells)
    double min_efficiency = 0.45; ///< flagged fraction below which boxes split
};

/// A rectangular box in level-local cell coordinates: [x0,x1) x [y0,y1).
struct Box {
    int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
    int width() const noexcept { return x1 - x0; }
    int height() const noexcept { return y1 - y0; }
    long cells() const noexcept { return static_cast<long>(width()) * height(); }
    bool empty() const noexcept { return x1 <= x0 || y1 <= y0; }
};

/// Flag cells of \a p whose density jump exceeds the threshold; returns a
/// row-major flag mask of size p.nx * p.ny.
std::vector<std::uint8_t> tag_cells(const Patch& p, const AmrConfig& cfg);

/// Grow flagged cells by \a buffer in all directions.
void buffer_tags(std::vector<std::uint8_t>& tags, int nx, int ny, int buffer);

/// Cluster flagged cells into rectangular boxes (simplified
/// Berger–Rigoutsos bisection).
std::vector<Box> cluster_tags(const std::vector<std::uint8_t>& tags, int nx, int ny,
                              const AmrConfig& cfg);

/// The per-rank patch hierarchy: level 0 is this rank's subdomain patch;
/// finer levels are rebuilt by regrid().
class Hierarchy {
public:
    Hierarchy(std::unique_ptr<Patch> level0, const AmrConfig& cfg);

    /// Rebuild levels 1..levels-1 from the current solution.
    /// Returns the number of fine patches created.
    std::size_t regrid();

    int num_levels() const noexcept { return static_cast<int>(levels_.size()); }
    std::vector<std::unique_ptr<Patch>>& level(int l) { return levels_[l]; }
    const std::vector<std::unique_ptr<Patch>>& level(int l) const { return levels_[l]; }

    std::size_t cells_on_level(int l) const;
    std::size_t total_cells() const;

    const AmrConfig& config() const noexcept { return cfg_; }

private:
    /// Create refined child patches over the flagged region of \a coarse.
    std::vector<std::unique_ptr<Patch>> refine_patch(const Patch& coarse);

    AmrConfig cfg_;
    std::vector<std::vector<std::unique_ptr<Patch>>> levels_;
};

} // namespace calib::clever
