// CleverLeaf-sim: a compact but genuine 2D compressible-hydrodynamics
// solver (first-order finite volume, Rusanov fluxes) structured into the
// computational kernels of the CleverLeaf mini-application (paper §V-B,
// §VI): ideal-gas, viscosity, calc-dt, pdv, accelerate, advec-cell,
// advec-mom, reset, revert. See DESIGN.md for the substitution rationale.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace calib::clever {

/// A 2D scalar field with optional per-cell components (for flux arrays).
class Field {
public:
    Field(int nx, int ny, int components = 1)
        : nx_(nx), ny_(ny), comp_(components),
          data_(static_cast<std::size_t>(nx) * ny * components, 0.0) {}

    double& at(int i, int j, int c = 0) noexcept {
        return data_[(static_cast<std::size_t>(j) * nx_ + i) * comp_ + c];
    }
    double at(int i, int j, int c = 0) const noexcept {
        return data_[(static_cast<std::size_t>(j) * nx_ + i) * comp_ + c];
    }

    int nx() const noexcept { return nx_; }
    int ny() const noexcept { return ny_; }

    void swap_data(Field& other) noexcept { data_.swap(other.data_); }
    void copy_from(const Field& other) { data_ = other.data_; }

private:
    int nx_, ny_, comp_;
    std::vector<double> data_;
};

/// One rectangular mesh patch at a given refinement level.
/// Coordinates (x0, y0) are in level-global cell units.
struct Patch {
    Patch(int level, int x0, int y0, int nx, int ny, double dx, double dy);

    int level;
    int x0, y0;
    int nx, ny;
    double dx, dy;

    // conserved state: density, momentum, total energy
    Field rho, mx, my, energy;
    // derived quantities (ideal-gas / viscosity kernels)
    Field pressure, soundspeed, wavespeed, velx, vely;
    // double-buffered updates
    Field rho_new, mx_new, my_new, energy_new;
    // face fluxes (4 components: rho, mx, my, E)
    Field flux_x{1, 1, 4};
    Field flux_y{1, 1, 4};

    // kernel diagnostics
    double pdv_work  = 0.0;
    double accel_sum = 0.0;

    std::size_t cells() const noexcept {
        return static_cast<std::size_t>(nx) * ny;
    }
};

/// Initialize the triple-point shock interaction problem (Galera et al.).
void init_triple_point(Patch& p, double domain_w, double domain_h);

// -- computational kernels (annotated by the driver) --------------------------
void kernel_ideal_gas(Patch& p);
void kernel_viscosity(Patch& p);
double kernel_calc_dt(const Patch& p);
void kernel_advec_cell(Patch& p, double dt);
void kernel_advec_mom(Patch& p, double dt);
void kernel_pdv(Patch& p, double dt);
void kernel_accelerate(Patch& p, double dt);
void kernel_reset(Patch& p);
void kernel_revert(Patch& p);

/// Face-flux computation (the heavy, *unannotated* "other computation").
void compute_fluxes(Patch& p);

/// Conservation diagnostic used by tests and the io region.
double patch_checksum(const Patch& p);

} // namespace calib::clever
