#include "amr.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace calib::clever {

std::vector<std::uint8_t> tag_cells(const Patch& p, const AmrConfig& cfg) {
    std::vector<std::uint8_t> tags(p.cells(), 0);
    for (int j = 0; j < p.ny; ++j) {
        for (int i = 0; i < p.nx; ++i) {
            const double r = p.rho.at(i, j);
            const double rx = p.rho.at(std::min(i + 1, p.nx - 1), j);
            const double ry = p.rho.at(i, std::min(j + 1, p.ny - 1));
            const double jump =
                std::max(std::abs(rx - r), std::abs(ry - r)) / std::max(r, 1e-12);
            if (jump > cfg.tag_threshold)
                tags[static_cast<std::size_t>(j) * p.nx + i] = 1;
        }
    }
    return tags;
}

void buffer_tags(std::vector<std::uint8_t>& tags, int nx, int ny, int buffer) {
    if (buffer <= 0)
        return;
    std::vector<std::uint8_t> out(tags.size(), 0);
    for (int j = 0; j < ny; ++j) {
        for (int i = 0; i < nx; ++i) {
            if (!tags[static_cast<std::size_t>(j) * nx + i])
                continue;
            const int jlo = std::max(0, j - buffer), jhi = std::min(ny - 1, j + buffer);
            const int ilo = std::max(0, i - buffer), ihi = std::min(nx - 1, i + buffer);
            for (int jj = jlo; jj <= jhi; ++jj)
                for (int ii = ilo; ii <= ihi; ++ii)
                    out[static_cast<std::size_t>(jj) * nx + ii] = 1;
        }
    }
    tags.swap(out);
}

namespace {

long count_tags(const std::vector<std::uint8_t>& tags, int nx, const Box& box) {
    long n = 0;
    for (int j = box.y0; j < box.y1; ++j)
        for (int i = box.x0; i < box.x1; ++i)
            n += tags[static_cast<std::size_t>(j) * nx + i];
    return n;
}

Box bounding_box(const std::vector<std::uint8_t>& tags, int nx, const Box& within) {
    Box bb{within.x1, within.y1, within.x0, within.y0};
    for (int j = within.y0; j < within.y1; ++j) {
        for (int i = within.x0; i < within.x1; ++i) {
            if (!tags[static_cast<std::size_t>(j) * nx + i])
                continue;
            bb.x0 = std::min(bb.x0, i);
            bb.y0 = std::min(bb.y0, j);
            bb.x1 = std::max(bb.x1, i + 1);
            bb.y1 = std::max(bb.y1, j + 1);
        }
    }
    if (bb.x1 <= bb.x0 || bb.y1 <= bb.y0)
        return Box{}; // no tags
    return bb;
}

void cluster_recursive(const std::vector<std::uint8_t>& tags, int nx,
                       const AmrConfig& cfg, const Box& region,
                       std::vector<Box>& out) {
    const Box box = bounding_box(tags, nx, region);
    if (box.empty())
        return;

    const long tagged     = count_tags(tags, nx, box);
    const double fraction = static_cast<double>(tagged) / box.cells();
    const bool fits = box.width() <= cfg.max_patch_size &&
                      box.height() <= cfg.max_patch_size;
    const bool efficient = fraction >= cfg.min_efficiency;
    const bool tiny      = box.width() <= 4 && box.height() <= 4;

    if ((fits && efficient) || tiny || (fits && box.cells() <= 64)) {
        out.push_back(box);
        return;
    }

    // bisect the longer dimension at the midpoint
    if (box.width() >= box.height()) {
        const int mid = box.x0 + box.width() / 2;
        cluster_recursive(tags, nx, cfg, Box{box.x0, box.y0, mid, box.y1}, out);
        cluster_recursive(tags, nx, cfg, Box{mid, box.y0, box.x1, box.y1}, out);
    } else {
        const int mid = box.y0 + box.height() / 2;
        cluster_recursive(tags, nx, cfg, Box{box.x0, box.y0, box.x1, mid}, out);
        cluster_recursive(tags, nx, cfg, Box{box.x0, mid, box.x1, box.y1}, out);
    }
}

} // namespace

std::vector<Box> cluster_tags(const std::vector<std::uint8_t>& tags, int nx, int ny,
                              const AmrConfig& cfg) {
    std::vector<Box> out;
    cluster_recursive(tags, nx, cfg, Box{0, 0, nx, ny}, out);
    return out;
}

Hierarchy::Hierarchy(std::unique_ptr<Patch> level0, const AmrConfig& cfg) : cfg_(cfg) {
    levels_.resize(cfg.levels);
    levels_[0].push_back(std::move(level0));
}

std::vector<std::unique_ptr<Patch>> Hierarchy::refine_patch(const Patch& coarse) {
    std::vector<std::unique_ptr<Patch>> out;

    std::vector<std::uint8_t> tags = tag_cells(coarse, cfg_);
    buffer_tags(tags, coarse.nx, coarse.ny, cfg_.tag_buffer);
    const std::vector<Box> boxes = cluster_tags(tags, coarse.nx, coarse.ny, cfg_);

    const int r = cfg_.refinement_ratio;
    for (const Box& b : boxes) {
        auto fine = std::make_unique<Patch>(
            coarse.level + 1, (coarse.x0 + b.x0) * r, (coarse.y0 + b.y0) * r,
            b.width() * r, b.height() * r, coarse.dx / r, coarse.dy / r);
        // initialize by injection from the coarse parent
        for (int j = 0; j < fine->ny; ++j) {
            for (int i = 0; i < fine->nx; ++i) {
                const int ci = b.x0 + i / r;
                const int cj = b.y0 + j / r;
                fine->rho.at(i, j)    = coarse.rho.at(ci, cj);
                fine->mx.at(i, j)     = coarse.mx.at(ci, cj);
                fine->my.at(i, j)     = coarse.my.at(ci, cj);
                fine->energy.at(i, j) = coarse.energy.at(ci, cj);
            }
        }
        kernel_ideal_gas(*fine);
        out.push_back(std::move(fine));
    }
    return out;
}

std::size_t Hierarchy::regrid() {
    std::size_t created = 0;
    for (int l = 1; l < cfg_.levels; ++l) {
        levels_[l].clear();
        for (const auto& coarse : levels_[l - 1]) {
            auto children = refine_patch(*coarse);
            created += children.size();
            for (auto& child : children)
                levels_[l].push_back(std::move(child));
        }
    }
    return created;
}

std::size_t Hierarchy::cells_on_level(int l) const {
    std::size_t n = 0;
    for (const auto& p : levels_[l])
        n += p->cells();
    return n;
}

std::size_t Hierarchy::total_cells() const {
    std::size_t n = 0;
    for (int l = 0; l < num_levels(); ++l)
        n += cells_on_level(l);
    return n;
}

} // namespace calib::clever
