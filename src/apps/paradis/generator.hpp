// ParaDiS-sim: synthetic distributed time-series profile dataset generator
// (substitution for the paper's 4096-rank ParaDiS dataset, §V-C).
//
// Reproduces the published dataset statistics: one .cali file per rank,
// 2174 records per file, a per-process time-series profile over
// computational kernels, MPI functions, MPI rank, and main-loop
// iterations, with visit count and aggregated runtimes per region. The
// paper's evaluation query
//     AGGREGATE sum(time.inclusive.duration) GROUP BY kernel, mpi.function
// produces exactly 85 output records over this dataset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace calib::paradis {

struct ParadisConfig {
    int records_per_file  = 2174;
    int num_kernels       = 60;
    int num_mpi_functions = 24;
    int iterations        = 25; ///< 25 * (60+24+1) = 2125; remainder padded
    std::uint64_t seed    = 0x9a7ad15ull;
};

/// Deterministic list of kernel / MPI-function names used in the dataset.
std::vector<std::string> kernel_names(int n);
std::vector<std::string> mpi_function_names(int n);

/// Write one rank's profile file. Deterministic in (rank, config.seed).
/// Returns the number of records written.
std::size_t write_rank_file(const std::string& path, int rank,
                            const ParadisConfig& config);

/// Generate a dataset of \a nranks files named <dir>/paradis-<rank>.cali.
/// Returns the file paths in rank order.
std::vector<std::string> generate_dataset(const std::string& dir, int nranks,
                                          const ParadisConfig& config);

} // namespace calib::paradis
