#include "generator.hpp"

#include "../../common/hash.hpp"
#include "../../common/recordmap.hpp"
#include "../../io/caliwriter.hpp"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>

namespace calib::paradis {

namespace {

// ParaDiS-flavoured kernel taxonomy (dislocation dynamics phases).
const char* kernel_stems[] = {
    "force-seg",   "force-remote", "cell-charge",  "segseg-force", "mobility",
    "integrate",   "collision",    "remesh",       "topology",     "migrate",
    "sort-cells",  "decomp",       "osmotic",      "stress",       "partial-forces",
};

const char* mpi_stems[] = {
    "MPI_Allreduce", "MPI_Barrier",   "MPI_Send",     "MPI_Recv",
    "MPI_Isend",     "MPI_Irecv",     "MPI_Wait",     "MPI_Waitall",
    "MPI_Bcast",     "MPI_Reduce",    "MPI_Gather",   "MPI_Scatter",
    "MPI_Allgather", "MPI_Alltoall",  "MPI_Sendrecv", "MPI_Scan",
};

/// xorshift-based deterministic value stream.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : state_(mix64(seed | 1)) {}
    std::uint64_t next() {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        return state_;
    }
    double uniform() { return static_cast<double>(next() >> 11) * 0x1p-53; }

private:
    std::uint64_t state_;
};

} // namespace

std::vector<std::string> kernel_names(int n) {
    std::vector<std::string> out;
    out.reserve(n);
    const int stems = static_cast<int>(std::size(kernel_stems));
    for (int i = 0; i < n; ++i) {
        std::string name = kernel_stems[i % stems];
        if (i >= stems)
            name += "-" + std::to_string(i / stems);
        out.push_back(std::move(name));
    }
    return out;
}

std::vector<std::string> mpi_function_names(int n) {
    std::vector<std::string> out;
    out.reserve(n);
    const int stems = static_cast<int>(std::size(mpi_stems));
    for (int i = 0; i < n; ++i) {
        std::string name = mpi_stems[i % stems];
        if (i >= stems)
            name += "_v" + std::to_string(i / stems);
        out.push_back(std::move(name));
    }
    return out;
}

std::size_t write_rank_file(const std::string& path, int rank,
                            const ParadisConfig& config) {
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("paradis-gen: cannot open " + path);

    CaliWriter writer(os);
    writer.write_global("paradis.rank", Variant(static_cast<long long>(rank)));
    writer.write_global("paradis.seed",
                        Variant(static_cast<unsigned long long>(config.seed)));

    const auto kernels = kernel_names(config.num_kernels);
    const auto mpis    = mpi_function_names(config.num_mpi_functions);
    Rng rng(config.seed ^ (static_cast<std::uint64_t>(rank) * 0x9e3779b97f4a7c15ull));

    const int keys_per_iter = config.num_kernels + config.num_mpi_functions + 1;

    auto emit = [&](int iteration, int key_index) {
        RecordMap rec;
        // key_index: [0, nk) kernels, [nk, nk+nm) MPI functions, last = neither
        if (key_index < config.num_kernels) {
            rec.append("kernel", Variant(kernels[key_index]));
        } else if (key_index < config.num_kernels + config.num_mpi_functions) {
            rec.append("mpi.function", Variant(mpis[key_index - config.num_kernels]));
        }
        rec.append("iteration#mainloop", Variant(static_cast<long long>(iteration)));
        rec.append("mpi.rank", Variant(static_cast<long long>(rank)));

        const std::uint64_t visits = 1 + rng.next() % 64;
        const double excl_us       = (0.5 + rng.uniform()) * 150.0 * visits;
        rec.append("count", Variant(static_cast<unsigned long long>(visits)));
        rec.append("sum#time.duration", Variant(excl_us));
        rec.append("sum#time.inclusive.duration",
                   Variant(excl_us * (1.0 + rng.uniform())));
        writer.write_record(rec);
    };

    std::size_t written = 0;
    for (int iter = 0; written < static_cast<std::size_t>(config.records_per_file);
         ++iter) {
        for (int k = 0;
             k < keys_per_iter &&
             written < static_cast<std::size_t>(config.records_per_file);
             ++k, ++written)
            emit(iter % config.iterations, k);
    }
    return written;
}

std::vector<std::string> generate_dataset(const std::string& dir, int nranks,
                                          const ParadisConfig& config) {
    std::filesystem::create_directories(dir);
    std::vector<std::string> paths;
    paths.reserve(nranks);
    for (int r = 0; r < nranks; ++r) {
        std::string path = dir + "/paradis-" + std::to_string(r) + ".cali";
        write_rank_file(path, r, config);
        paths.push_back(std::move(path));
    }
    return paths;
}

} // namespace calib::paradis
