// Sliding-window specification and pane arithmetic (CalQL WINDOW/SLIDE).
//
// A window of duration W sliding by S is maintained as a ring of
// ceil(W/S) *panes*, each one pane-width (= S) of time. Every pane is a
// full mergeable partial aggregate (an AggregationDB), so the window
// result is a fold of the live panes through the same merge DAG the
// parallel engine uses — no subtractable kernel states are required, and
// byte-identity across thread counts / merge strategies is preserved.
//
// Pane assignment is floor division: a timestamp t (in microseconds)
// belongs to pane floor(t / S), i.e. pane k covers [k*S, (k+1)*S) and a
// timestamp exactly on a pane edge opens the *new* pane. The watermark is
// the largest pane index seen; live panes are the trailing ceil(W/S)
// panes ending at the watermark, and older panes retire deterministically.
#pragma once

#include "../common/variant.hpp"

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>

namespace calib {

/// Parsed form of "WINDOW <duration> [BY <attr>] [SLIDE <duration>]".
struct WindowSpec {
    /// Window duration in microseconds; 0 = no window clause.
    std::uint64_t duration_us = 0;
    /// Slide (pane width) in microseconds; 0 = tumbling (slide == duration).
    std::uint64_t slide_us = 0;
    /// Time attribute the window keys on; empty = "time.offset" (the
    /// runtime's microseconds-since-thread-start timestamp).
    std::string attribute;

    bool enabled() const noexcept { return duration_us > 0; }

    std::uint64_t slide() const noexcept {
        return slide_us > 0 ? slide_us : duration_us;
    }

    const std::string& time_attribute() const {
        static const std::string def = "time.offset";
        return attribute.empty() ? def : attribute;
    }

    /// Number of live panes: ceil(duration / slide).
    std::uint64_t pane_count() const noexcept {
        const std::uint64_t s = slide();
        return s == 0 ? 0 : (duration_us + s - 1) / s;
    }

    bool operator==(const WindowSpec& rhs) const {
        return duration_us == rhs.duration_us && slide_us == rhs.slide_us &&
               attribute == rhs.attribute;
    }
};

/// Pane index of timestamp \a t_us with pane width \a slide_us, or nullopt
/// when the timestamp cannot be placed: NaN/inf, or a magnitude whose pane
/// index does not fit an int64. The division is done in double, so the
/// assignment is uniform across Int/UInt/Double timestamps of equal value
/// (timestamps beyond 2^53 µs lose sub-µs precision — deterministically).
/// This is the single pane-assignment function: the engine, the daemon,
/// the tests, and the fuzz oracle all call it, so they cannot disagree.
inline std::optional<std::int64_t> pane_index(double t_us,
                                              std::uint64_t slide_us) noexcept {
    if (slide_us == 0 || !std::isfinite(t_us))
        return std::nullopt;
    const double p = std::floor(t_us / static_cast<double>(slide_us));
    // 2^62 bounds keep the later live-range arithmetic (index +/- pane
    // count) far from int64 overflow
    constexpr double limit = 4611686018427387904.0; // 2^62
    if (!(p > -limit && p < limit))
        return std::nullopt;
    return static_cast<std::int64_t>(p);
}

/// Pane index of a record's time-attribute value. Missing (Empty), bool,
/// and string values have no timestamp: the record is excluded from
/// windowed results (and counted by the caller) — the policy pinned in
/// docs/CORRECTNESS.md.
inline std::optional<std::int64_t> pane_index(const Variant& value,
                                              std::uint64_t slide_us) noexcept {
    if (!value.is_numeric())
        return std::nullopt;
    return pane_index(value.to_double(), slide_us);
}

} // namespace calib
