#include "kernel.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>

namespace calib::kernel {

namespace {

template <typename T>
T* as(void* p) {
    return static_cast<T*>(p);
}
template <typename T>
const T* as(const void* p) {
    return static_cast<const T*>(p);
}

} // namespace

int histogram_bin_index(double v) noexcept {
    // Deliberate policy (pinned by tests): NaN and negative values count in
    // bin 0 alongside v < 1 rather than being dropped — the histogram's
    // record count n stays equal to the number of numeric inputs.
    if (!(v >= 1.0))
        return 0;
    // Open-ended top bin for v >= 2^(bins-2), including +inf. Bounding v
    // *before* the float->int cast keeps the cast in range (casting an
    // out-of-int-range double, e.g. log2(inf), is undefined behavior).
    if (v >= static_cast<double>(std::uint64_t(1) << (histogram_bins - 2)))
        return histogram_bins - 1;
    const int bin = 1 + static_cast<int>(std::floor(std::log2(v)));
    return std::min(std::max(bin, 1), histogram_bins - 1);
}

std::size_t state_size(AggOp op) noexcept {
    switch (op) {
    case AggOp::Count:        return sizeof(CountState);
    case AggOp::Sum:          return sizeof(SumState);
    case AggOp::Min:          return sizeof(MinMaxState);
    case AggOp::Max:          return sizeof(MinMaxState);
    case AggOp::Avg:          return sizeof(AvgState);
    case AggOp::Variance:     return sizeof(VarianceState);
    case AggOp::Histogram:    return sizeof(HistogramState);
    case AggOp::PercentTotal: return sizeof(SumState);
    }
    return 0;
}

void state_init(AggOp op, void* state) noexcept {
    std::memset(state, 0, state_size(op));
    if (op == AggOp::Min || op == AggOp::Max)
        *as<MinMaxState>(state) = MinMaxState{Variant()};
    if (op == AggOp::Histogram) {
        auto* h = as<HistogramState>(state);
        h->vmin = std::numeric_limits<double>::infinity();
        h->vmax = -std::numeric_limits<double>::infinity();
    }
}

namespace {

/// The exact-integer addend for \a v, or false when the value only fits
/// the double path (doubles, and UInt above INT64_MAX).
bool int_addend(const Variant& v, std::int64_t* out) {
    switch (v.type()) {
    case Variant::Type::Int:
        *out = v.as_int();
        return true;
    case Variant::Type::Bool:
        *out = v.as_bool() ? 1 : 0;
        return true;
    case Variant::Type::UInt:
        if (v.as_uint() > static_cast<std::uint64_t>(
                              std::numeric_limits<std::int64_t>::max()))
            return false;
        *out = static_cast<std::int64_t>(v.as_uint());
        return true;
    default:
        return false;
    }
}

/// Widen an integer accumulation to the double path (Caliper's behavior
/// when an exact sum leaves the integer domain).
void sum_widen(SumState* s, std::int64_t a, std::int64_t b) {
    s->dsum = static_cast<double>(a) + static_cast<double>(b);
    s->kind = 2;
    s->isum = 0; // canonical: the integer accumulator is dead on the
                 // double path, and equal value sequences must produce
                 // bitwise-equal states (the init-merge lemma)
}

void sum_update(SumState* s, const Variant& v) {
    if (!v.is_numeric() && !v.is_bool())
        return; // non-numeric inputs are ignored
    if (v.type() == Variant::Type::Double && std::isnan(v.as_double()))
        return; // value-domain policy: NaN inputs are ignored
    std::int64_t iv;
    if (s->kind != 2 && int_addend(v, &iv)) {
        std::int64_t next;
        if (__builtin_add_overflow(s->isum, iv, &next))
            sum_widen(s, s->isum, iv); // checked: no signed-overflow UB
        else {
            s->isum = next;
            s->kind = 1;
        }
    } else {
        if (s->kind == 1) {
            s->dsum = static_cast<double>(s->isum);
            s->isum = 0; // see sum_widen: keep the state canonical
        }
        s->kind = 2;
        s->dsum += v.to_double();
    }
    ++s->updates;
}

void sum_merge(SumState* s, const SumState* o) {
    if (o->kind == 0)
        return;
    if (o->kind == 1 && s->kind != 2) {
        std::int64_t next;
        if (__builtin_add_overflow(s->isum, o->isum, &next))
            sum_widen(s, s->isum, o->isum);
        else {
            s->isum = next;
            s->kind = 1;
        }
    } else {
        const double add = o->kind == 1 ? static_cast<double>(o->isum) : o->dsum;
        if (s->kind == 1) {
            s->dsum = static_cast<double>(s->isum);
            s->isum = 0; // see sum_widen: keep the state canonical
        }
        // a freshly-initialized destination must reproduce the source
        // bitwise (e.g. -0.0 survives); the merge-strategy byte-identity
        // contract rests on this — see docs/ENGINE.md
        s->dsum = s->kind == 0 ? add : s->dsum + add;
        s->kind = 2;
    }
    s->updates += o->updates;
}

Variant sum_result(const SumState* s) {
    if (s->kind == 0)
        return {};
    if (s->kind == 1)
        return Variant(static_cast<long long>(s->isum));
    return Variant(s->dsum);
}

double sum_as_double(const SumState* s) {
    return s->kind == 1 ? static_cast<double>(s->isum) : s->dsum;
}

} // namespace

void state_update(AggOp op, void* state, const Variant& value) noexcept {
    switch (op) {
    case AggOp::Count:
        ++as<CountState>(state)->count;
        break;
    case AggOp::Sum:
    case AggOp::PercentTotal:
        sum_update(as<SumState>(state), value);
        break;
    case AggOp::Min: {
        // Value-domain policy: NaN inputs are ignored — a NaN must not win
        // or lose the ordering depending on arrival order. An all-NaN input
        // leaves the state Empty (no output row for this operator).
        if (value.type() == Variant::Type::Double && std::isnan(value.as_double()))
            break;
        auto* s = as<MinMaxState>(state);
        if (s->value.empty() || value.compare(s->value) < 0)
            s->value = value;
        break;
    }
    case AggOp::Max: {
        if (value.type() == Variant::Type::Double && std::isnan(value.as_double()))
            break;
        auto* s = as<MinMaxState>(state);
        if (s->value.empty() || value.compare(s->value) > 0)
            s->value = value;
        break;
    }
    case AggOp::Avg: {
        if (!value.is_numeric() && !value.is_bool())
            break;
        const double x = value.to_double();
        if (std::isnan(x))
            break; // NaN inputs are ignored; empty state stays Empty
        auto* s = as<AvgState>(state);
        s->sum += x;
        ++s->count;
        break;
    }
    case AggOp::Variance: {
        if (!value.is_numeric() && !value.is_bool())
            break;
        const double x = value.to_double();
        if (std::isnan(x))
            break; // NaN inputs are ignored; empty state stays Empty
        auto* s = as<VarianceState>(state);
        ++s->n;
        const double delta = x - s->mean;
        s->mean += delta / static_cast<double>(s->n);
        s->m2 += delta * (x - s->mean);
        break;
    }
    case AggOp::Histogram: {
        if (!value.is_numeric() && !value.is_bool())
            break;
        auto* s        = as<HistogramState>(state);
        const double x = value.to_double();
        ++s->bins[histogram_bin_index(x)]; // NaN/negatives count in bin 0
        ++s->n;
        if (!std::isnan(x)) { // NaN never becomes the observed min/max
            s->vmin = std::min(s->vmin, x);
            s->vmax = std::max(s->vmax, x);
        }
        break;
    }
    }
}

void state_merge(AggOp op, void* state, const void* other) noexcept {
    switch (op) {
    case AggOp::Count:
        as<CountState>(state)->count += as<CountState>(other)->count;
        break;
    case AggOp::Sum:
    case AggOp::PercentTotal:
        sum_merge(as<SumState>(state), as<SumState>(other));
        break;
    case AggOp::Min: {
        auto* s       = as<MinMaxState>(state);
        const auto* o = as<MinMaxState>(other);
        if (!o->value.empty() && (s->value.empty() || o->value.compare(s->value) < 0))
            s->value = o->value;
        break;
    }
    case AggOp::Max: {
        auto* s       = as<MinMaxState>(state);
        const auto* o = as<MinMaxState>(other);
        if (!o->value.empty() && (s->value.empty() || o->value.compare(s->value) > 0))
            s->value = o->value;
        break;
    }
    case AggOp::Avg: {
        auto* s = as<AvgState>(state);
        const auto* o = as<AvgState>(other);
        if (s->count == 0) {
            // bitwise copy onto a fresh destination (strategy byte-identity)
            *s = *o;
            break;
        }
        s->sum += o->sum;
        s->count += o->count;
        break;
    }
    case AggOp::Variance: {
        // Chan et al. parallel combination of Welford accumulators.
        auto* s       = as<VarianceState>(state);
        const auto* o = as<VarianceState>(other);
        if (o->n == 0)
            break;
        if (s->n == 0) {
            *s = *o;
            break;
        }
        const double na = static_cast<double>(s->n), nb = static_cast<double>(o->n);
        const double delta = o->mean - s->mean;
        const double n     = na + nb;
        s->m2 += o->m2 + delta * delta * na * nb / n;
        s->mean += delta * nb / n;
        s->n += o->n;
        break;
    }
    case AggOp::Histogram: {
        auto* s       = as<HistogramState>(state);
        const auto* o = as<HistogramState>(other);
        for (int i = 0; i < histogram_bins; ++i)
            s->bins[i] += o->bins[i];
        s->n += o->n;
        s->vmin = std::min(s->vmin, o->vmin);
        s->vmax = std::max(s->vmax, o->vmax);
        break;
    }
    }
}

void state_result(AggOp op, const void* state, const AggOpConfig& cfg,
                  RecordMap& out, double percent_denominator) {
    const std::string label = cfg.result_label();
    switch (op) {
    case AggOp::Count:
        out.append(label, Variant(static_cast<unsigned long long>(
                              as<CountState>(state)->count)));
        break;
    case AggOp::Sum: {
        Variant v = sum_result(as<SumState>(state));
        if (!v.empty())
            out.append(label, v);
        break;
    }
    case AggOp::PercentTotal: {
        const auto* s = as<SumState>(state);
        if (s->kind == 0)
            break;
        const double pct = percent_denominator > 0.0
                               ? 100.0 * sum_as_double(s) / percent_denominator
                               : 0.0;
        out.append(label, Variant(pct));
        break;
    }
    case AggOp::Min:
    case AggOp::Max: {
        const auto* s = as<MinMaxState>(state);
        if (!s->value.empty())
            out.append(label, s->value);
        break;
    }
    case AggOp::Avg: {
        const auto* s = as<AvgState>(state);
        if (s->count > 0)
            out.append(label, Variant(s->sum / static_cast<double>(s->count)));
        break;
    }
    case AggOp::Variance: {
        const auto* s = as<VarianceState>(state);
        if (s->n > 0)
            out.append(label, Variant(s->m2 / static_cast<double>(s->n)));
        break;
    }
    case AggOp::Histogram: {
        const auto* s = as<HistogramState>(state);
        if (s->n == 0)
            break;
        // Render the populated bin range as "lo..hi:c0|c1|...".
        int lo = 0, hi = histogram_bins - 1;
        while (lo < hi && s->bins[lo] == 0)
            ++lo;
        while (hi > lo && s->bins[hi] == 0)
            --hi;
        std::string text = std::to_string(lo) + ".." + std::to_string(hi) + ":";
        for (int i = lo; i <= hi; ++i) {
            if (i > lo)
                text += '|';
            text += std::to_string(s->bins[i]);
        }
        out.append(label, Variant(text));
        break;
    }
    }
}

double state_sum_value(AggOp op, const void* state) noexcept {
    if (op == AggOp::Sum || op == AggOp::PercentTotal)
        return sum_as_double(as<SumState>(state));
    if (op == AggOp::Count)
        return static_cast<double>(as<CountState>(state)->count);
    if (op == AggOp::Avg)
        return as<AvgState>(state)->sum;
    return 0.0;
}

void state_serialize(AggOp op, const void* state, ByteWriter& w) {
    switch (op) {
    case AggOp::Count:
        w.put(as<CountState>(state)->count);
        break;
    case AggOp::Sum:
    case AggOp::PercentTotal: {
        const auto* s = as<SumState>(state);
        w.put(s->dsum);
        w.put(s->isum);
        w.put(s->kind);
        w.put(s->updates);
        break;
    }
    case AggOp::Min:
    case AggOp::Max:
        w.put_variant(as<MinMaxState>(state)->value);
        break;
    case AggOp::Avg: {
        const auto* s = as<AvgState>(state);
        w.put(s->sum);
        w.put(s->count);
        break;
    }
    case AggOp::Variance: {
        const auto* s = as<VarianceState>(state);
        w.put(s->n);
        w.put(s->mean);
        w.put(s->m2);
        break;
    }
    case AggOp::Histogram: {
        const auto* s = as<HistogramState>(state);
        for (int i = 0; i < histogram_bins; ++i)
            w.put(s->bins[i]);
        w.put(s->vmin);
        w.put(s->vmax);
        w.put(s->n);
        break;
    }
    }
}

void state_deserialize(AggOp op, void* state, ByteReader& r) {
    switch (op) {
    case AggOp::Count:
        as<CountState>(state)->count = r.get<std::uint64_t>();
        break;
    case AggOp::Sum:
    case AggOp::PercentTotal: {
        auto* s    = as<SumState>(state);
        s->dsum    = r.get<double>();
        s->isum    = r.get<std::int64_t>();
        s->kind    = r.get<std::uint32_t>();
        s->updates = r.get<std::uint32_t>();
        break;
    }
    case AggOp::Min:
    case AggOp::Max:
        as<MinMaxState>(state)->value = r.get_variant();
        break;
    case AggOp::Avg: {
        auto* s  = as<AvgState>(state);
        s->sum   = r.get<double>();
        s->count = r.get<std::uint64_t>();
        break;
    }
    case AggOp::Variance: {
        auto* s = as<VarianceState>(state);
        s->n    = r.get<std::uint64_t>();
        s->mean = r.get<double>();
        s->m2   = r.get<double>();
        break;
    }
    case AggOp::Histogram: {
        auto* s = as<HistogramState>(state);
        for (int i = 0; i < histogram_bins; ++i)
            s->bins[i] = r.get<std::uint64_t>();
        s->vmin = r.get<double>();
        s->vmax = r.get<double>();
        s->n    = r.get<std::uint64_t>();
        break;
    }
    }
}

} // namespace calib::kernel
