#include "ops.hpp"

#include "../common/util.hpp"

namespace calib {

const char* agg_op_name(AggOp op) noexcept {
    switch (op) {
    case AggOp::Count:        return "count";
    case AggOp::Sum:          return "sum";
    case AggOp::Min:          return "min";
    case AggOp::Max:          return "max";
    case AggOp::Avg:          return "avg";
    case AggOp::Variance:     return "variance";
    case AggOp::Histogram:    return "histogram";
    case AggOp::PercentTotal: return "percent_total";
    }
    return "?";
}

std::optional<AggOp> agg_op_from_name(std::string_view name) noexcept {
    const std::string n = util::to_lower(name);
    if (n == "count")         return AggOp::Count;
    if (n == "sum")           return AggOp::Sum;
    if (n == "min")           return AggOp::Min;
    if (n == "max")           return AggOp::Max;
    if (n == "avg" || n == "mean" || n == "average") return AggOp::Avg;
    if (n == "variance" || n == "var") return AggOp::Variance;
    if (n == "histogram" || n == "hist") return AggOp::Histogram;
    if (n == "percent_total" || n == "percent") return AggOp::PercentTotal;
    return std::nullopt;
}

bool agg_op_is_nullary(AggOp op) noexcept {
    return op == AggOp::Count;
}

std::string AggOpConfig::result_label() const {
    if (!alias.empty())
        return alias;
    if (agg_op_is_nullary(op))
        return agg_op_name(op);
    return std::string(agg_op_name(op)) + "#" + attribute;
}

AggregationConfig AggregationConfig::parse(std::string_view ops_list,
                                           std::string_view key_list) {
    AggregationConfig cfg;
    for (std::string_view tok : util::split(ops_list, ',')) {
        tok = util::trim(tok);
        if (tok.empty())
            continue;
        AggOpConfig op;
        const std::size_t paren = tok.find('(');
        if (paren == std::string_view::npos) {
            if (auto parsed = agg_op_from_name(tok)) {
                op.op = *parsed;
            } else {
                // bare attribute name: default to sum (matches the paper's
                // "AGGREGATE time.duration" usage in §VI-C/D)
                op.op        = AggOp::Sum;
                op.attribute = std::string(tok);
            }
        } else {
            const std::size_t close = tok.rfind(')');
            auto name = util::trim(tok.substr(0, paren));
            auto arg  = util::trim(tok.substr(
                paren + 1, close == std::string_view::npos ? std::string_view::npos
                                                           : close - paren - 1));
            if (auto parsed = agg_op_from_name(name))
                op.op = *parsed;
            else
                continue; // unknown operator: skip (caller may validate)
            op.attribute = std::string(arg);
        }
        cfg.ops.push_back(std::move(op));
    }

    const auto keys = util::trim(key_list);
    if (keys == "*" || util::iequals(keys, "all")) {
        cfg.key = KeySpec::everything();
    } else {
        for (std::string_view tok : util::split(keys, ',')) {
            tok = util::trim(tok);
            if (!tok.empty())
                cfg.key.attributes.emplace_back(tok);
        }
    }
    return cfg;
}

} // namespace calib
