// Aggregation operators and their configuration.
//
// An aggregation scheme (paper §III-B) consists of
//   - aggregation *operators* applied to aggregation *attributes*
//     ("AGGREGATE count, sum(time.duration)"), and
//   - an aggregation *key* ("GROUP BY function, loop.iteration").
//
// The paper's implementation provides sum, min, max, and count; we add
// avg, variance, histogram, and percent_total as natural extensions.
#pragma once

#include "../common/variant.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace calib {

enum class AggOp : std::uint8_t {
    Count = 0,   ///< number of input records per key
    Sum,         ///< sum of the attribute's values
    Min,         ///< minimum value
    Max,         ///< maximum value
    Avg,         ///< arithmetic mean (extension)
    Variance,    ///< population variance, Welford/Chan mergeable (extension)
    Histogram,   ///< log2-binned value histogram (extension)
    PercentTotal ///< sum, normalized to percent of the overall total (extension)
};

/// Canonical lower-case operator name as used in the description language.
const char* agg_op_name(AggOp op) noexcept;

/// Parse an operator name (case-insensitive); nullopt when unknown.
std::optional<AggOp> agg_op_from_name(std::string_view name) noexcept;

/// True for operators that take no target attribute (count).
bool agg_op_is_nullary(AggOp op) noexcept;

/// One configured aggregation operation, e.g. sum(time.duration).
struct AggOpConfig {
    AggOp op = AggOp::Count;
    std::string attribute; ///< target attribute label (empty for count)
    std::string alias;     ///< output label override ("... AS total")

    /// Default output attribute label: "count", "sum#time.duration", ...
    std::string result_label() const;

    bool operator==(const AggOpConfig& rhs) const {
        return op == rhs.op && attribute == rhs.attribute && alias == rhs.alias;
    }
};

/// The aggregation key: either an explicit attribute list or "group by
/// everything" (all attributes present in a record that are not aggregation
/// targets or marked skip_key).
struct KeySpec {
    bool all = false;
    std::vector<std::string> attributes;

    static KeySpec everything() {
        KeySpec k;
        k.all = true;
        return k;
    }
    static KeySpec of(std::vector<std::string> attrs) {
        KeySpec k;
        k.attributes = std::move(attrs);
        return k;
    }

    bool operator==(const KeySpec& rhs) const {
        return all == rhs.all && attributes == rhs.attributes;
    }
};

/// A complete aggregation scheme.
struct AggregationConfig {
    std::vector<AggOpConfig> ops;
    KeySpec key;

    /// Convenience: "count,sum(time.duration)" + key list.
    static AggregationConfig parse(std::string_view ops_list, std::string_view key_list);
};

} // namespace calib
