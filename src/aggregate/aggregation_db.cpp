#include "aggregation_db.hpp"

#include "../common/bytebuf.hpp"
#include "../common/hash.hpp"
#include "../common/log.hpp"
#include "../obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <type_traits>

#include <unistd.h>

namespace calib {

namespace {

// Global mirrors of the per-DB Stats: every AggregationDB instance (all
// workers, online channels) feeds the same instruments, so --stats shows
// whole-process hash-table behavior.
obs::Counter aggdb_records("aggdb.records");
obs::Counter aggdb_lookups("aggdb.lookups");
obs::Counter aggdb_probe_steps("aggdb.probe_steps");
obs::Counter aggdb_inserts("aggdb.inserts");
obs::Counter aggdb_merges("aggdb.merges");
obs::Counter aggdb_spill_runs("aggdb.spill_runs");
obs::Counter aggdb_spill_bytes("aggdb.spill_bytes");
obs::Timer aggdb_flush("aggdb.flush");

constexpr std::size_t initial_table_slots = 256;
constexpr std::uint32_t serialize_magic   = 0xCA11B0DBu;

std::uint64_t hash_key(const Entry* key, std::size_t len) {
    std::uint64_t h = fnv1a_offset;
    for (std::size_t i = 0; i < len; ++i) {
        h = fnv1a_value(key[i].attribute, h);
        h = fnv1a_value(key[i].value.hash(), h);
    }
    return mix64(h);
}

bool keys_equal(const Entry* a, const Entry* b, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i)
        if (!(a[i] == b[i]))
            return false;
    return true;
}

const Variant* find_entry(std::span<const Entry> record, id_t attribute) {
    for (const Entry& e : record)
        if (e.attribute == attribute)
            return &e.value;
    return nullptr;
}

/// Total order on key values consistent with Variant's bitwise equality
/// (compare == 0 iff the Variants compare equal): type tag first, then the
/// exact payload — doubles by bit pattern (so -0.0/+0.0 and NaN payloads
/// stay distinct, matching operator==), strings by content (interned:
/// equal content is pointer-equal).
int compare_key_value(const Variant& a, const Variant& b) {
    const int ta = static_cast<int>(a.type());
    const int tb = static_cast<int>(b.type());
    if (ta != tb)
        return ta < tb ? -1 : 1;
    switch (a.type()) {
    case Variant::Type::Empty:
        return 0;
    case Variant::Type::Bool:
        return (a.as_bool() ? 1 : 0) - (b.as_bool() ? 1 : 0);
    case Variant::Type::Int:
        return a.as_int() < b.as_int() ? -1 : a.as_int() > b.as_int() ? 1 : 0;
    case Variant::Type::UInt:
        return a.as_uint() < b.as_uint() ? -1 : a.as_uint() > b.as_uint() ? 1 : 0;
    case Variant::Type::Double: {
        const std::uint64_t ba = std::bit_cast<std::uint64_t>(a.as_double());
        const std::uint64_t bb = std::bit_cast<std::uint64_t>(b.as_double());
        return ba < bb ? -1 : ba > bb ? 1 : 0;
    }
    case Variant::Type::String:
        return std::strcmp(a.as_cstr(), b.as_cstr());
    }
    return 0;
}

/// Lexicographic total order on whole keys, consistent with keys_equal().
/// All spill runs are sorted by this order, so finalize merges them with
/// one streaming cursor per run.
int compare_keys(const Entry* a, std::size_t alen, const Entry* b, std::size_t blen) {
    const std::size_t n = alen < blen ? alen : blen;
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i].attribute != b[i].attribute)
            return a[i].attribute < b[i].attribute ? -1 : 1;
        const int c = compare_key_value(a[i].value, b[i].value);
        if (c != 0)
            return c;
    }
    return alen == blen ? 0 : alen < blen ? -1 : 1;
}

/// Streaming cursor over one key-sorted spill run. Frames are
/// [u32 payload_len][payload] with payload = [u32 states_off][u16 key_len]
/// [key: u32 attr + variant, ...][serialized op states]. load_next() keeps
/// the whole frame contiguous in the buffer, so key() and states() stay
/// valid until the next load_next() call.
class SpillRunCursor {
public:
    SpillRunCursor(int fd, std::uint64_t begin, std::uint64_t end)
        : fd_(fd), next_read_(begin), end_(end) {}

    bool load_next() {
        off_ += frame_size_;
        frame_size_ = 0;
        if (!ensure(4)) {
            if (avail_ != off_ || next_read_ < end_)
                throw std::runtime_error("AggregationDB: truncated spill run");
            return false;
        }
        std::uint32_t payload_len = 0;
        std::memcpy(&payload_len, buf_.data() + off_, sizeof(payload_len));
        if (!ensure(4 + static_cast<std::size_t>(payload_len)))
            throw std::runtime_error("AggregationDB: truncated spill frame");
        const std::byte* p = buf_.data() + off_ + 4;
        ByteReader r(std::span<const std::byte>(p, payload_len));
        const auto states_off = r.get<std::uint32_t>();
        const auto key_len    = r.get<std::uint16_t>();
        key_.clear();
        for (std::uint16_t k = 0; k < key_len; ++k) {
            const id_t attr = r.get<std::uint32_t>();
            key_.push_back(Entry(attr, r.get_variant()));
        }
        states_     = std::span<const std::byte>(p + states_off, payload_len - states_off);
        frame_size_ = 4 + payload_len;
        return true;
    }

    const Entry* key() const noexcept { return key_.data(); }
    std::size_t key_len() const noexcept { return key_.size(); }
    std::span<const std::byte> states() const noexcept { return states_; }

private:
    bool ensure(std::size_t need) {
        if (avail_ - off_ >= need)
            return true;
        if (off_ > 0) {
            std::memmove(buf_.data(), buf_.data() + off_, avail_ - off_);
            avail_ -= off_;
            off_ = 0;
        }
        if (buf_.size() < need)
            buf_.resize(std::max<std::size_t>(need, 256 * 1024));
        while (avail_ < need) {
            if (next_read_ >= end_)
                return false;
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(buf_.size() - avail_, end_ - next_read_));
            const ssize_t n = ::pread(fd_, buf_.data() + avail_, want,
                                      static_cast<off_t>(next_read_));
            if (n <= 0)
                throw std::runtime_error("AggregationDB: spill read failed");
            avail_ += static_cast<std::size_t>(n);
            next_read_ += static_cast<std::uint64_t>(n);
        }
        return true;
    }

    int fd_;
    std::uint64_t next_read_;
    std::uint64_t end_;
    std::vector<std::byte> buf_;
    std::size_t off_        = 0;
    std::size_t avail_      = 0;
    std::size_t frame_size_ = 0;
    std::vector<Entry> key_;
    std::span<const std::byte> states_;
};

} // namespace

AggregationDB::AggregationDB(AggregationConfig config, AttributeRegistry* registry)
    : config_(std::move(config)), registry_(registry) {
    assert(registry_);

    key_ids_.assign(config_.key.attributes.size(), invalid_id);
    op_ids_.assign(config_.ops.size(), invalid_id);
    op_fallback_ids_.assign(config_.ops.size(), invalid_id);

    op_state_offsets_.reserve(config_.ops.size());
    for (const AggOpConfig& op : config_.ops) {
        op_state_offsets_.push_back(state_stride_);
        state_stride_ += kernel::state_size(op.op) / sizeof(std::uint64_t);
    }

    table_.assign(initial_table_slots, 0);
}

// Temp spill file: key-sorted runs of serialized partial aggregates,
// appended by spill_current_run() and merged by for_each_merged_group().
struct AggregationDB::SpillFile {
    std::FILE* file = nullptr;
    std::vector<std::uint64_t> run_offsets; ///< byte offset of each run start
    std::uint64_t bytes = 0;                ///< total bytes written
    ~SpillFile() {
        if (file)
            std::fclose(file);
    }
};

// out of line: SpillFile is incomplete in the header
AggregationDB::AggregationDB(AggregationDB&&) noexcept            = default;
AggregationDB& AggregationDB::operator=(AggregationDB&&) noexcept = default;
AggregationDB::~AggregationDB()                                   = default;

void AggregationDB::set_memory_budget(std::size_t bytes) {
    memory_budget_ = bytes;
    if (bytes == 0) {
        spill_limit_ = 0;
        return;
    }
    // deterministic entry-count threshold derived from the configuration
    // alone (never allocator state), so every run over equal input spills
    // at identical record boundaries — batched or record-at-a-time
    const std::size_t est_key =
        config_.key.all ? 8
                        : std::max<std::size_t>(std::size_t(1),
                                                config_.key.attributes.size());
    const std::size_t per_entry = est_key * sizeof(Entry) +
                                  state_stride_ * sizeof(std::uint64_t) +
                                  sizeof(EntryRec) + 2 * sizeof(std::uint32_t);
    spill_limit_ = std::max<std::size_t>(16, bytes / per_entry);
}

void AggregationDB::maybe_spill() {
    if (spill_limit_ != 0 && entries_.size() >= spill_limit_)
        spill_current_run();
}

void AggregationDB::spill_current_run() {
    if (entries_.empty())
        return;
    if (!spill_) {
        spill_       = std::make_unique<SpillFile>();
        spill_->file = std::tmpfile();
        if (!spill_->file)
            throw std::runtime_error("AggregationDB: cannot create spill file");
    }

    // write the live entries as one key-sorted run
    std::vector<std::uint32_t> order(entries_.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [this](std::uint32_t a, std::uint32_t b) {
        const EntryRec& ra = entries_[a];
        const EntryRec& rb = entries_[b];
        return compare_keys(key_arena_.data() + ra.key_offset, ra.key_len,
                            key_arena_.data() + rb.key_offset, rb.key_len) < 0;
    });

    std::uint64_t run_bytes = 0;
    std::vector<std::byte> frame;
    for (const std::uint32_t idx : order) {
        const EntryRec& rec = entries_[idx];
        frame.clear();
        ByteWriter fw(frame);
        fw.put(static_cast<std::uint32_t>(0)); // states_off, patched below
        fw.put(static_cast<std::uint16_t>(rec.key_len));
        for (std::uint32_t k = 0; k < rec.key_len; ++k) {
            const Entry& ke = key_arena_[rec.key_offset + k];
            fw.put(static_cast<std::uint32_t>(ke.attribute));
            fw.put_variant(ke.value);
        }
        const std::uint32_t states_off = static_cast<std::uint32_t>(frame.size());
        std::memcpy(frame.data(), &states_off, sizeof(states_off));
        for (std::size_t i = 0; i < config_.ops.size(); ++i)
            kernel::state_serialize(config_.ops[i].op, entry_state(idx, i), fw);

        const std::uint32_t payload_len = static_cast<std::uint32_t>(frame.size());
        if (std::fwrite(&payload_len, sizeof(payload_len), 1, spill_->file) != 1 ||
            std::fwrite(frame.data(), payload_len, 1, spill_->file) != 1)
            throw std::runtime_error("AggregationDB: spill write failed");
        run_bytes += sizeof(payload_len) + payload_len;
    }
    std::fflush(spill_->file); // finalize reads through pread()

    spill_->run_offsets.push_back(spill_->bytes);
    spill_->bytes += run_bytes;
    ++stats_.spill_runs;
    stats_.spill_bytes += run_bytes;
    aggdb_spill_runs.add();
    aggdb_spill_bytes.add(run_bytes);

    // restart the live table; processed count, stats, and resolution state
    // carry over
    key_arena_.clear();
    state_arena_.clear();
    entries_.clear();
    table_.assign(initial_table_slots, 0);
}

void AggregationDB::reserve(std::size_t entries) {
    entries_.reserve(entries);
    key_arena_.reserve(entries * (config_.key.all ? 8 : config_.key.attributes.size()));
    state_arena_.reserve(entries * state_stride_);
    if (entries * 2 > table_.size())
        grow_table(entries * 2);
}

void AggregationDB::resolve_ids() {
    const std::size_t gen = registry_->generation();
    if (fully_resolved_ || gen == resolved_generation_)
        return;
    resolved_generation_ = gen;

    bool all     = true;
    bool changed = false;
    for (std::size_t i = 0; i < config_.key.attributes.size(); ++i) {
        if (key_ids_[i] == invalid_id) {
            Attribute a = registry_->find(config_.key.attributes[i]);
            if (a.valid()) {
                key_ids_[i] = a.id();
                changed     = true;
            } else {
                all = false;
            }
        }
    }
    for (std::size_t i = 0; i < config_.ops.size(); ++i) {
        const AggOpConfig& op = config_.ops[i];
        if (agg_op_is_nullary(op.op))
            continue;
        if (op_ids_[i] == invalid_id) {
            Attribute a = registry_->find(op.attribute);
            if (a.valid()) {
                op_ids_[i] = a.id();
                changed    = true;
            } else {
                all = false;
            }
        }
        if (op_fallback_ids_[i] == invalid_id) {
            // allow re-aggregating already-aggregated profiles: sum(x) also
            // accepts a "sum#x" input column (paper §VI-B second stage)
            Attribute a =
                registry_->find(AggOpConfig{op.op, op.attribute, ""}.result_label());
            if (a.valid()) {
                op_fallback_ids_[i] = a.id();
                changed             = true;
            } else {
                all = false;
            }
        }
    }
    // newly resolved targets invalidate the implicit-key skip cache
    if (changed)
        std::fill(implicit_skip_.begin(), implicit_skip_.end(),
                  static_cast<std::uint8_t>(2));
    fully_resolved_ = all;
}

bool AggregationDB::skip_in_implicit_key(id_t attr) {
    if (attr >= implicit_skip_.size()) {
        const std::size_t old = implicit_skip_.size();
        implicit_skip_.resize(attr + 1, 2); // 2 = unknown
        (void)old;
    }
    std::uint8_t& flag = implicit_skip_[attr];
    if (flag == 2) {
        Attribute a = registry_->get(attr);
        bool skip   = !a.valid() || a.skip_in_key() || a.is_hidden();
        if (!skip) {
            // aggregation targets never appear in implicit keys
            for (std::size_t i = 0; i < config_.ops.size(); ++i) {
                if (op_ids_[i] == attr || op_fallback_ids_[i] == attr) {
                    skip = true;
                    break;
                }
            }
            // aggregatable metric values (e.g. time.duration) are inputs,
            // not grouping dimensions
            if (a.is_aggregatable())
                skip = true;
        }
        flag = skip ? 1 : 0;
    }
    return flag != 0;
}

void AggregationDB::process(std::span<const Entry> record) {
    resolve_ids();

    // mirror snapshot capacity: entries beyond max_entries are dropped
    if (record.size() > SnapshotRecord::max_entries)
        record = record.first(SnapshotRecord::max_entries);

    Entry key[SnapshotRecord::max_entries];
    std::size_t key_len = 0;

    if (config_.key.all) {
        for (const Entry& e : record)
            if (!skip_in_implicit_key(e.attribute))
                key[key_len++] = e;
        // stable: duplicate attributes keep their record order, so two
        // records with the same entry multiset always map to the same key
        std::stable_sort(key, key + key_len, [](const Entry& a, const Entry& b) {
            return a.attribute < b.attribute;
        });
    } else {
        for (std::size_t i = 0; i < key_ids_.size(); ++i) {
            const id_t attr = key_ids_[i];
            const Variant* found =
                attr == invalid_id ? nullptr : find_entry(record, attr);
            const Variant v = found ? *found : Variant();
            // canonicalize: an absent key attribute always contributes the
            // same (invalid_id, empty) entry, so groups do not depend on
            // when the attribute was first defined
            key[key_len++] = Entry(v.empty() ? invalid_id : attr, v);
        }
    }

    const std::uint64_t h   = hash_key(key, key_len);
    const std::size_t index = find_or_insert(key, key_len, h);
    update_ops(index, record);
    ++processed_;
    aggdb_records.add();
    maybe_spill();
}

void AggregationDB::process_batch(const RecordBatch& batch,
                                  std::span<const std::uint32_t> selection) {
    if (selection.empty())
        return;
    resolve_ids();

    // resolve key and op attributes to columns once per batch (stream
    // causality makes this equivalent to per-record resolution: a record
    // can only carry an attribute the stream had already defined, so the
    // batch's columns cover everything any of its rows reference)
    if (config_.key.all) {
        key_plan_.clear();
        for (std::size_t ci = 0; ci < batch.num_columns(); ++ci)
            if (!skip_in_implicit_key(batch.column_at(ci).attribute))
                key_plan_.push_back(static_cast<std::uint32_t>(ci));
        // column attributes are unique, so a plain sort matches the record
        // path's stable_sort over per-record entries
        std::sort(key_plan_.begin(), key_plan_.end(),
                  [&batch](std::uint32_t a, std::uint32_t b) {
                      return batch.column_at(a).attribute < batch.column_at(b).attribute;
                  });
    } else {
        key_cols_.assign(key_ids_.size(), -1);
        for (std::size_t i = 0; i < key_ids_.size(); ++i)
            if (key_ids_[i] != invalid_id)
                key_cols_[i] = batch.column_index(key_ids_[i]);
    }
    op_cols_.assign(config_.ops.size(), -1);
    op_fallback_cols_.assign(config_.ops.size(), -1);
    for (std::size_t i = 0; i < config_.ops.size(); ++i) {
        if (op_ids_[i] != invalid_id)
            op_cols_[i] = batch.column_index(op_ids_[i]);
        if (op_fallback_ids_[i] != invalid_id)
            op_fallback_cols_[i] = batch.column_index(op_fallback_ids_[i]);
    }

    // pass 1: build every conforming row's key into one scratch arena and
    // hash it; overflow rows and rows beyond snapshot capacity (where
    // truncation applies) take the record-at-a-time fallback
    row_keys_.clear();
    scratch_keys_.clear();
    hash_scratch_.clear();
    for (const std::uint32_t r : selection) {
        if (batch.is_overflow(r) ||
            batch.entries_in_row(r) > SnapshotRecord::max_entries) {
            row_keys_.push_back(RowKey{0, 0, UINT32_MAX});
            continue;
        }
        const std::uint32_t off = static_cast<std::uint32_t>(scratch_keys_.size());
        if (config_.key.all) {
            for (const std::uint32_t ci : key_plan_) {
                const RecordBatch::Column& c = batch.column_at(ci);
                if (c.valid[r])
                    scratch_keys_.push_back(Entry(c.attribute, c.values[r]));
            }
        } else {
            for (std::size_t i = 0; i < key_ids_.size(); ++i) {
                const std::int32_t ci = key_cols_[i];
                const bool present =
                    ci >= 0 && batch.column_at(static_cast<std::size_t>(ci)).valid[r];
                const Variant v =
                    present ? batch.column_at(static_cast<std::size_t>(ci)).values[r]
                            : Variant();
                scratch_keys_.push_back(Entry(v.empty() ? invalid_id : key_ids_[i], v));
            }
        }
        const std::uint32_t len = static_cast<std::uint32_t>(scratch_keys_.size()) - off;
        const std::uint64_t h   = hash_key(scratch_keys_.data() + off, len);
        row_keys_.push_back(RowKey{h, off, len});
        hash_scratch_.push_back(h);
    }

    // reserve kernel-state capacity from the observed morsel cardinality
    // (distinct key hashes) before the probe loop, so low-duplication
    // batches do not rehash and reallocate mid-morsel
    if (!hash_scratch_.empty()) {
        std::sort(hash_scratch_.begin(), hash_scratch_.end());
        std::size_t distinct = 1;
        for (std::size_t i = 1; i < hash_scratch_.size(); ++i)
            if (hash_scratch_[i] != hash_scratch_[i - 1])
                ++distinct;
        std::size_t want = entries_.size() + distinct;
        if (spill_limit_ != 0)
            want = std::min(want, spill_limit_); // the table restarts at the budget
        if (want > entries_.capacity())
            reserve(want);
    }

    // pass 2, in selection order: probe (with a last-key memo for
    // clustered streams) and update the kernels straight from the columns
    std::uint64_t direct    = 0;
    std::size_t memo_index  = static_cast<std::size_t>(-1);
    std::uint64_t memo_hash = 0;
    std::uint32_t memo_off  = 0;
    std::uint32_t memo_len  = 0;
    std::size_t ki          = 0;
    for (const std::uint32_t r : selection) {
        const RowKey rk = row_keys_[ki++];
        if (rk.len == UINT32_MAX) {
            // overflow rows keep their exact record; oversized conforming
            // rows materialize, then process() truncates like the shim
            if (batch.is_overflow(r)) {
                process(batch.overflow_record(r).span());
            } else {
                batch.materialize(r, fallback_rec_);
                process(fallback_rec_.span());
            }
            memo_index = static_cast<std::size_t>(-1); // process() may spill
            continue;
        }
        const Entry* key = scratch_keys_.data() + rk.offset;
        std::size_t index;
        if (memo_index != static_cast<std::size_t>(-1) && rk.hash == memo_hash &&
            rk.len == memo_len &&
            keys_equal(key, scratch_keys_.data() + memo_off, rk.len)) {
            index = memo_index;
            ++stats_.lookups; // memo hits still count as key lookups
            aggdb_lookups.add();
        } else {
            index      = find_or_insert(key, rk.len, rk.hash);
            memo_index = index;
            memo_hash  = rk.hash;
            memo_off   = rk.offset;
            memo_len   = rk.len;
        }
        update_ops_cols(index, batch, r);
        ++processed_;
        ++direct;
        if (spill_limit_ != 0 && entries_.size() >= spill_limit_) {
            spill_current_run();
            memo_index = static_cast<std::size_t>(-1); // entries_ restarted
        }
    }
    aggdb_records.add(direct);
}

void AggregationDB::process_offline(const RecordMap& record) {
    SnapshotRecord rec;
    for (const auto& [name, value] : record) {
        Attribute a = registry_->create(name, value.type());
        rec.append(a.id(), value);
    }
    process(rec);
}

std::size_t AggregationDB::find_or_insert(const Entry* key, std::size_t key_len,
                                          std::uint64_t hash) {
    ++stats_.lookups;
    aggdb_lookups.add();
    const std::size_t mask = table_.size() - 1;
    std::size_t slot       = hash & mask;

    while (true) {
        const std::uint32_t stored = table_[slot];
        if (stored == 0)
            break;
        const EntryRec& e = entries_[stored - 1];
        if (e.hash == hash && e.key_len == key_len &&
            keys_equal(key_arena_.data() + e.key_offset, key, key_len))
            return stored - 1;
        ++stats_.collisions;
        aggdb_probe_steps.add();
        slot = (slot + 1) & mask;
    }

    // insert
    ++stats_.inserts;
    aggdb_inserts.add();
    EntryRec rec;
    rec.hash         = hash;
    rec.key_offset   = static_cast<std::uint32_t>(key_arena_.size());
    rec.key_len      = static_cast<std::uint32_t>(key_len);
    rec.state_offset = static_cast<std::uint32_t>(state_arena_.size());

    key_arena_.insert(key_arena_.end(), key, key + key_len);
    state_arena_.resize(state_arena_.size() + state_stride_, 0);
    for (std::size_t i = 0; i < config_.ops.size(); ++i)
        kernel::state_init(config_.ops[i].op,
                           state_arena_.data() + rec.state_offset + op_state_offsets_[i]);

    entries_.push_back(rec);
    table_[slot] = static_cast<std::uint32_t>(entries_.size());

    if (entries_.size() * 10 > table_.size() * 7)
        grow_table(table_.size() * 2);

    return entries_.size() - 1;
}

void AggregationDB::grow_table(std::size_t min_slots) {
    std::size_t slots = table_.size();
    while (slots < min_slots)
        slots *= 2;
    table_.assign(slots, 0);
    const std::size_t mask = slots - 1;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        std::size_t slot = entries_[i].hash & mask;
        while (table_[slot] != 0)
            slot = (slot + 1) & mask;
        table_[slot] = static_cast<std::uint32_t>(i + 1);
    }
}

std::uint64_t* AggregationDB::entry_state(std::size_t entry_index, std::size_t op_index) {
    return state_arena_.data() + entries_[entry_index].state_offset +
           op_state_offsets_[op_index];
}

const std::uint64_t* AggregationDB::entry_state(std::size_t entry_index,
                                                std::size_t op_index) const {
    return state_arena_.data() + entries_[entry_index].state_offset +
           op_state_offsets_[op_index];
}

void AggregationDB::update_ops(std::size_t entry_index, std::span<const Entry> record) {
    for (std::size_t i = 0; i < config_.ops.size(); ++i) {
        const AggOp op = config_.ops[i].op;
        if (agg_op_is_nullary(op)) {
            kernel::state_update(op, entry_state(entry_index, i), Variant());
            continue;
        }
        const Variant* v =
            op_ids_[i] != invalid_id ? find_entry(record, op_ids_[i]) : nullptr;
        if ((!v || v->empty()) && op_fallback_ids_[i] != invalid_id)
            v = find_entry(record, op_fallback_ids_[i]);
        if (v && !v->empty())
            kernel::state_update(op, entry_state(entry_index, i), *v);
    }
}

void AggregationDB::update_ops_cols(std::size_t entry_index, const RecordBatch& batch,
                                    std::size_t row) {
    for (std::size_t i = 0; i < config_.ops.size(); ++i) {
        const AggOp op = config_.ops[i].op;
        if (agg_op_is_nullary(op)) {
            kernel::state_update(op, entry_state(entry_index, i), Variant());
            continue;
        }
        const Variant* v      = nullptr;
        const std::int32_t pc = op_cols_[i];
        if (pc >= 0) {
            const RecordBatch::Column& c =
                batch.column_at(static_cast<std::size_t>(pc));
            if (c.valid[row])
                v = &c.values[row];
        }
        if ((!v || v->empty()) && op_fallback_cols_[i] >= 0) {
            const RecordBatch::Column& c =
                batch.column_at(static_cast<std::size_t>(op_fallback_cols_[i]));
            if (c.valid[row])
                v = &c.values[row];
        }
        if (v && !v->empty())
            kernel::state_update(op, entry_state(entry_index, i), *v);
    }
}

void AggregationDB::for_each_merged_group(
    const std::function<void(const Entry*, std::size_t, const std::uint64_t*)>& fn)
    const {
    if (!spill_) {
        for (std::size_t e = 0; e < entries_.size(); ++e) {
            const EntryRec& rec = entries_[e];
            fn(key_arena_.data() + rec.key_offset, rec.key_len,
               state_arena_.data() + rec.state_offset);
        }
        return;
    }

    const int fd            = ::fileno(spill_->file);
    const std::size_t nruns = spill_->run_offsets.size();
    std::vector<SpillRunCursor> runs;
    runs.reserve(nruns);
    for (std::size_t i = 0; i < nruns; ++i) {
        const std::uint64_t begin = spill_->run_offsets[i];
        const std::uint64_t end =
            i + 1 < nruns ? spill_->run_offsets[i + 1] : spill_->bytes;
        runs.emplace_back(fd, begin, end);
    }
    std::vector<std::uint8_t> alive(nruns, 0);
    for (std::size_t i = 0; i < nruns; ++i)
        alive[i] = runs[i].load_next() ? 1 : 0;

    // the live table joins as one more key-sorted "run", merged after every
    // spilled run so its updates land last (chronological merge order)
    std::vector<std::uint32_t> live(entries_.size());
    std::iota(live.begin(), live.end(), 0u);
    std::sort(live.begin(), live.end(), [this](std::uint32_t a, std::uint32_t b) {
        const EntryRec& ra = entries_[a];
        const EntryRec& rb = entries_[b];
        return compare_keys(key_arena_.data() + ra.key_offset, ra.key_len,
                            key_arena_.data() + rb.key_offset, rb.key_len) < 0;
    });
    std::size_t live_pos = 0;

    std::vector<std::uint64_t> merged(state_stride_);
    std::uint64_t scratch[kernel::histogram_bins + 4]; // largest op state
    std::vector<std::uint32_t> equal_runs;

    while (true) {
        // minimal key across all run cursors and the live table. A key may
        // legitimately be zero-length (GROUP BY * on an empty record), so
        // "nothing left" needs an explicit flag, not a null key pointer.
        bool have_min        = false;
        const Entry* min_key = nullptr;
        std::size_t min_len  = 0;
        for (std::size_t i = 0; i < nruns; ++i) {
            if (!alive[i])
                continue;
            if (!have_min ||
                compare_keys(runs[i].key(), runs[i].key_len(), min_key, min_len) < 0) {
                have_min = true;
                min_key  = runs[i].key();
                min_len  = runs[i].key_len();
            }
        }
        bool have_live        = false;
        const Entry* live_key = nullptr;
        std::size_t live_len  = 0;
        if (live_pos < live.size()) {
            const EntryRec& rec = entries_[live[live_pos]];
            have_live           = true;
            live_key            = key_arena_.data() + rec.key_offset;
            live_len            = rec.key_len;
            if (!have_min || compare_keys(live_key, live_len, min_key, min_len) < 0) {
                have_min = true;
                min_key  = live_key;
                min_len  = live_len;
            }
        }
        if (!have_min)
            break;

        // merge every cursor positioned at this key, runs in write order
        for (std::size_t i = 0; i < config_.ops.size(); ++i)
            kernel::state_init(config_.ops[i].op, merged.data() + op_state_offsets_[i]);
        equal_runs.clear();
        for (std::size_t i = 0; i < nruns; ++i) {
            if (!alive[i] ||
                compare_keys(runs[i].key(), runs[i].key_len(), min_key, min_len) != 0)
                continue;
            equal_runs.push_back(static_cast<std::uint32_t>(i));
            ByteReader r(runs[i].states());
            for (std::size_t k = 0; k < config_.ops.size(); ++k) {
                kernel::state_init(config_.ops[k].op, scratch);
                kernel::state_deserialize(config_.ops[k].op, scratch, r);
                kernel::state_merge(config_.ops[k].op,
                                    merged.data() + op_state_offsets_[k], scratch);
            }
        }
        bool live_used = false;
        if (have_live && compare_keys(live_key, live_len, min_key, min_len) == 0) {
            const EntryRec& rec = entries_[live[live_pos]];
            for (std::size_t k = 0; k < config_.ops.size(); ++k)
                kernel::state_merge(
                    config_.ops[k].op, merged.data() + op_state_offsets_[k],
                    state_arena_.data() + rec.state_offset + op_state_offsets_[k]);
            live_used = true;
        }

        fn(min_key, min_len, merged.data());

        // advance only after fn: min_key may point into a cursor's buffer
        for (const std::uint32_t i : equal_runs)
            alive[i] = runs[i].load_next() ? 1 : 0;
        if (live_used)
            ++live_pos;
    }
}

std::size_t AggregationDB::bytes() const noexcept {
    return key_arena_.capacity() * sizeof(Entry) +
           state_arena_.capacity() * sizeof(std::uint64_t) +
           entries_.capacity() * sizeof(EntryRec) +
           table_.capacity() * sizeof(std::uint32_t);
}

void AggregationDB::flush(const std::function<void(RecordMap&&)>& sink) const {
    obs::Timer::Scope flush_scope(aggdb_flush);

    if (spill_) {
        // merged emission in spill-key order; two passes because
        // percent_total denominators need every group first
        std::vector<double> denominators(config_.ops.size(), 0.0);
        bool need_denominators = false;
        for (const AggOpConfig& op : config_.ops)
            if (op.op == AggOp::PercentTotal)
                need_denominators = true;
        if (need_denominators) {
            for_each_merged_group(
                [&](const Entry*, std::size_t, const std::uint64_t* state) {
                    for (std::size_t i = 0; i < config_.ops.size(); ++i)
                        if (config_.ops[i].op == AggOp::PercentTotal)
                            denominators[i] += kernel::state_sum_value(
                                config_.ops[i].op, state + op_state_offsets_[i]);
                });
        }
        for_each_merged_group([&](const Entry* key, std::size_t key_len,
                                  const std::uint64_t* state) {
            RecordMap out;
            out.reserve(key_len + config_.ops.size());
            for (std::size_t k = 0; k < key_len; ++k) {
                const Entry& ke = key[k];
                if (ke.value.empty() || ke.attribute == invalid_id)
                    continue;
                out.append(registry_->get(ke.attribute).name(), ke.value);
            }
            for (std::size_t i = 0; i < config_.ops.size(); ++i)
                kernel::state_result(config_.ops[i].op, state + op_state_offsets_[i],
                                     config_.ops[i], out, denominators[i]);
            sink(std::move(out));
        });
        return;
    }

    // percent_total denominators, one per configured op. Accumulated in
    // canonical (key-sorted) order, not insertion order: the double sum is
    // then a function of the group-state set alone, so every merge
    // strategy — which may assemble the table in a different entry order —
    // yields identical denominators. Matches the spilled path, which
    // iterates in spill-key order.
    std::vector<double> denominators(config_.ops.size(), 0.0);
    bool need_denominators = false;
    for (const AggOpConfig& op : config_.ops)
        if (op.op == AggOp::PercentTotal)
            need_denominators = true;
    if (need_denominators) {
        std::vector<std::uint32_t> order(entries_.size());
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      const EntryRec& ra = entries_[a];
                      const EntryRec& rb = entries_[b];
                      return compare_keys(key_arena_.data() + ra.key_offset,
                                          ra.key_len,
                                          key_arena_.data() + rb.key_offset,
                                          rb.key_len) < 0;
                  });
        for (std::size_t i = 0; i < config_.ops.size(); ++i) {
            if (config_.ops[i].op != AggOp::PercentTotal)
                continue;
            for (const std::uint32_t e : order)
                denominators[i] +=
                    kernel::state_sum_value(config_.ops[i].op, entry_state(e, i));
        }
    }

    for (std::size_t e = 0; e < entries_.size(); ++e) {
        RecordMap out;
        const EntryRec& rec = entries_[e];
        out.reserve(rec.key_len + config_.ops.size());
        for (std::uint32_t k = 0; k < rec.key_len; ++k) {
            const Entry& ke = key_arena_[rec.key_offset + k];
            if (ke.value.empty() || ke.attribute == invalid_id)
                continue;
            out.append(registry_->get(ke.attribute).name(), ke.value);
        }
        for (std::size_t i = 0; i < config_.ops.size(); ++i)
            kernel::state_result(config_.ops[i].op, entry_state(e, i), config_.ops[i],
                                 out, denominators[i]);
        sink(std::move(out));
    }
}

std::vector<RecordMap> AggregationDB::flush() const {
    std::vector<RecordMap> out;
    out.reserve(entries_.size());
    flush([&out](RecordMap&& r) { out.push_back(std::move(r)); });
    return out;
}

void AggregationDB::merge(const AggregationDB& other) {
    assert(config_.ops.size() == other.config_.ops.size());
    assert(!other.spilled()); // sources drain before they spill
    aggdb_merges.add();
    std::size_t want = entries_.size() + other.entries_.size();
    if (spill_limit_ != 0)
        want = std::min(want, spill_limit_);
    reserve(want);
    for (std::size_t e = 0; e < other.entries_.size(); ++e) {
        const EntryRec& rec = other.entries_[e];
        const Entry* key    = other.key_arena_.data() + rec.key_offset;
        const std::size_t index = find_or_insert(key, rec.key_len, rec.hash);
        for (std::size_t i = 0; i < config_.ops.size(); ++i)
            kernel::state_merge(config_.ops[i].op, entry_state(index, i),
                                other.entry_state(e, i));
        maybe_spill();
    }
    processed_ += other.processed_;
}

void AggregationDB::merge(AggregationDB&& other) {
    assert(config_.ops.size() == other.config_.ops.size());
    assert(registry_ == other.registry_);
    assert(!other.spilled()); // sources drain before they spill
    // the fall-through path counts in merge(const&); count the fast paths here
    if (other.entries_.empty()) {
        aggdb_merges.add();
        processed_ += other.processed_;
        other.clear();
        return;
    }
    if (entries_.empty()) {
        aggdb_merges.add();
        // steal the arenas wholesale — no key copies, no rehashing
        key_arena_.swap(other.key_arena_);
        state_arena_.swap(other.state_arena_);
        entries_.swap(other.entries_);
        table_.swap(other.table_);
        key_ids_.swap(other.key_ids_);
        op_ids_.swap(other.op_ids_);
        op_fallback_ids_.swap(other.op_fallback_ids_);
        implicit_skip_.swap(other.implicit_skip_);
        std::swap(resolved_generation_, other.resolved_generation_);
        std::swap(fully_resolved_, other.fully_resolved_);
        processed_ += other.processed_;
        stats_.lookups += other.stats_.lookups;
        stats_.collisions += other.stats_.collisions;
        stats_.inserts += other.stats_.inserts;
        other.clear();
        maybe_spill(); // the stolen table may already exceed the budget
        return;
    }
    merge(static_cast<const AggregationDB&>(other));
    other.clear();
}

void AggregationDB::append_entry_unchecked(const AggregationDB& src,
                                           const EntryRec& rec) {
    EntryRec out     = rec;
    out.key_offset   = static_cast<std::uint32_t>(key_arena_.size());
    out.state_offset = static_cast<std::uint32_t>(state_arena_.size());
    key_arena_.insert(key_arena_.end(),
                      src.key_arena_.begin() + rec.key_offset,
                      src.key_arena_.begin() + rec.key_offset + rec.key_len);
    state_arena_.insert(state_arena_.end(),
                        src.state_arena_.begin() + rec.state_offset,
                        src.state_arena_.begin() + rec.state_offset +
                            state_stride_);
    entries_.push_back(out);
    const std::size_t mask = table_.size() - 1;
    std::size_t slot       = rec.hash & mask;
    while (table_[slot] != 0)
        slot = (slot + 1) & mask;
    table_[slot] = static_cast<std::uint32_t>(entries_.size());
    ++stats_.inserts;
    aggdb_inserts.add();
    if (entries_.size() * 10 > table_.size() * 7)
        grow_table(table_.size() * 2);
}

std::vector<AggregationDB> AggregationDB::extract_partitions(unsigned bits) {
    assert(bits >= 1 && bits <= 8);
    assert(!spilled()); // worker partials never spill (budget is root-only)
    const std::size_t nparts = std::size_t(1) << bits;
    const unsigned shift     = 64 - bits;

    std::vector<AggregationDB> parts;
    parts.reserve(nparts);
    for (std::size_t p = 0; p < nparts; ++p)
        parts.emplace_back(config_, registry_);
    if (entries_.empty())
        return parts;

    // size each partition exactly up front so the scatter loop below is a
    // pure cursor-bump memcpy per entry — no capacity checks, no rehash
    std::vector<std::uint32_t> counts(nparts, 0);
    std::vector<std::size_t> key_elems(nparts, 0);
    for (const EntryRec& rec : entries_) {
        const std::size_t p = rec.hash >> shift;
        ++counts[p];
        key_elems[p] += rec.key_len;
    }
    for (std::size_t p = 0; p < nparts; ++p) {
        if (counts[p] == 0)
            continue;
        AggregationDB& dst = parts[p];
        dst.entries_.reserve(counts[p]);
        dst.key_arena_.resize(key_elems[p]);
        dst.state_arena_.resize(counts[p] * state_stride_);
        if (std::size_t(counts[p]) * 2 > dst.table_.size())
            dst.grow_table(std::size_t(counts[p]) * 2);
        dst.stats_.inserts += counts[p];
    }
    aggdb_inserts.add(entries_.size());

    static_assert(std::is_trivially_copyable_v<Entry>,
                  "key arena scatter relies on memcpy");
    std::vector<std::uint32_t> key_cur(nparts, 0), state_cur(nparts, 0);
    for (const EntryRec& rec : entries_) {
        const std::size_t p = rec.hash >> shift;
        AggregationDB& dst = parts[p];
        EntryRec out       = rec;
        out.key_offset     = key_cur[p];
        out.state_offset   = state_cur[p];
        std::memcpy(dst.key_arena_.data() + key_cur[p],
                    key_arena_.data() + rec.key_offset,
                    rec.key_len * sizeof(Entry));
        std::memcpy(dst.state_arena_.data() + state_cur[p],
                    state_arena_.data() + rec.state_offset,
                    state_stride_ * sizeof(std::uint64_t));
        key_cur[p] += rec.key_len;
        state_cur[p] += static_cast<std::uint32_t>(state_stride_);
        dst.entries_.push_back(out);
        const std::size_t mask = dst.table_.size() - 1;
        std::size_t slot       = rec.hash & mask;
        while (dst.table_[slot] != 0)
            slot = (slot + 1) & mask;
        dst.table_[slot] = static_cast<std::uint32_t>(dst.entries_.size());
    }

    // the source restarts empty; processed count, stats, and resolution
    // state stay (the engine folds counts through the processor merge)
    key_arena_.clear();
    state_arena_.clear();
    entries_.clear();
    table_.assign(initial_table_slots, 0);
    return parts;
}

void AggregationDB::absorb_disjoint(AggregationDB&& other) {
    assert(config_.ops.size() == other.config_.ops.size());
    assert(registry_ == other.registry_);
    assert(!other.spilled());
    if (other.entries_.empty()) {
        processed_ += other.processed_;
        other.clear();
        return;
    }
    if (entries_.empty()) {
        merge(std::move(other)); // arena steal
        return;
    }
    aggdb_merges.add();
    if (spill_limit_ == 0) {
        // no budget → no spill can interleave, so concatenate the arenas
        // wholesale and fix entry offsets up instead of copying per entry
        reserve(entries_.size() + other.entries_.size());
        const auto key_base   = static_cast<std::uint32_t>(key_arena_.size());
        const auto state_base = static_cast<std::uint32_t>(state_arena_.size());
        key_arena_.insert(key_arena_.end(), other.key_arena_.begin(),
                          other.key_arena_.end());
        state_arena_.insert(state_arena_.end(), other.state_arena_.begin(),
                            other.state_arena_.end());
        const std::size_t mask = table_.size() - 1;
        for (const EntryRec& rec : other.entries_) {
            EntryRec out = rec;
            out.key_offset += key_base;
            out.state_offset += state_base;
            entries_.push_back(out);
            std::size_t slot = rec.hash & mask;
            while (table_[slot] != 0)
                slot = (slot + 1) & mask;
            table_[slot] = static_cast<std::uint32_t>(entries_.size());
            ++stats_.inserts;
            aggdb_inserts.add();
        }
        processed_ += other.processed_;
        other.clear();
        return;
    }
    std::size_t want = entries_.size() + other.entries_.size();
    want             = std::min(want, spill_limit_);
    reserve(want);
    for (const EntryRec& rec : other.entries_) {
        append_entry_unchecked(other, rec);
        maybe_spill();
    }
    processed_ += other.processed_;
    other.clear();
}

std::size_t AggregationDB::serialized_entry_count(std::span<const std::byte> data) {
    ByteReader r(data);
    if (r.get<std::uint32_t>() != serialize_magic)
        throw std::runtime_error("AggregationDB: bad serialization magic");
    r.get<std::uint32_t>(); // op count
    r.get<std::uint64_t>(); // processed
    return r.get<std::uint32_t>();
}

std::vector<std::byte> AggregationDB::serialize() const {
    std::vector<std::byte> buf;
    ByteWriter w(buf);
    w.put(serialize_magic);
    w.put(static_cast<std::uint32_t>(config_.ops.size()));
    w.put(static_cast<std::uint64_t>(processed_));

    if (spill_) {
        // the merged group count is only known after the pass; patch it in
        const std::size_t count_pos = buf.size();
        w.put(static_cast<std::uint32_t>(0));
        std::uint32_t groups = 0;
        for_each_merged_group([&](const Entry* key, std::size_t key_len,
                                  const std::uint64_t* state) {
            ++groups;
            w.put(static_cast<std::uint16_t>(key_len));
            for (std::size_t k = 0; k < key_len; ++k) {
                if (key[k].attribute == invalid_id)
                    w.put_string("");
                else
                    w.put_string(registry_->get(key[k].attribute).name_view());
                w.put_variant(key[k].value);
            }
            for (std::size_t i = 0; i < config_.ops.size(); ++i)
                kernel::state_serialize(config_.ops[i].op,
                                        state + op_state_offsets_[i], w);
        });
        std::memcpy(buf.data() + count_pos, &groups, sizeof(groups));
        return buf;
    }

    w.put(static_cast<std::uint32_t>(entries_.size()));

    for (std::size_t e = 0; e < entries_.size(); ++e) {
        const EntryRec& rec = entries_[e];
        w.put(static_cast<std::uint16_t>(rec.key_len));
        for (std::uint32_t k = 0; k < rec.key_len; ++k) {
            const Entry& ke = key_arena_[rec.key_offset + k];
            if (ke.attribute == invalid_id)
                w.put_string("");
            else
                w.put_string(registry_->get(ke.attribute).name_view());
            w.put_variant(ke.value);
        }
        for (std::size_t i = 0; i < config_.ops.size(); ++i)
            kernel::state_serialize(config_.ops[i].op, entry_state(e, i), w);
    }
    return buf;
}

void AggregationDB::merge_serialized(std::span<const std::byte> data) {
    merge_serialized_impl(data, 0, 0);
}

void AggregationDB::merge_serialized(std::span<const std::byte> data, unsigned bits,
                                     std::size_t partition) {
    assert(bits >= 1 && bits <= 8);
    assert(partition < (std::size_t(1) << bits));
    merge_serialized_impl(data, bits, partition);
}

/// bits == 0 folds every entry (plain merge_serialized); bits > 0 folds
/// only the entries whose key hash lands in \a partition — the rest are
/// still decoded (to advance the reader) but not applied. Record counts
/// are credited once per buffer: always when bits == 0, else only by the
/// partition-0 replay.
void AggregationDB::merge_serialized_impl(std::span<const std::byte> data,
                                          unsigned bits, std::size_t partition) {
    ByteReader r(data);
    if (r.get<std::uint32_t>() != serialize_magic)
        throw std::runtime_error("AggregationDB: bad serialization magic");
    const auto nops = r.get<std::uint32_t>();
    if (nops != config_.ops.size())
        throw std::runtime_error("AggregationDB: op-count mismatch in merge");
    const auto nprocessed = r.get<std::uint64_t>();
    const auto nentries   = r.get<std::uint32_t>();
    std::size_t want      = entries_.size() +
                       (bits == 0 ? nentries : nentries >> bits);
    if (spill_limit_ != 0)
        want = std::min<std::size_t>(want, spill_limit_);
    reserve(want);

    // scratch for one deserialized kernel state (largest op state)
    std::uint64_t scratch[kernel::histogram_bins + 4];

    Entry key[SnapshotRecord::max_entries];
    for (std::uint32_t e = 0; e < nentries; ++e) {
        const auto key_len = r.get<std::uint16_t>();
        if (key_len > SnapshotRecord::max_entries)
            throw std::runtime_error("AggregationDB: oversized key in merge buffer");
        for (std::uint16_t k = 0; k < key_len; ++k) {
            const std::string_view name = r.get_string();
            const Variant value         = r.get_variant();
            id_t attr                   = invalid_id;
            if (!name.empty())
                attr = registry_->create(name, value.type()).id();
            key[k] = Entry(attr, value);
        }
        const std::uint64_t h = hash_key(key, key_len);
        if (bits != 0 && (h >> (64 - bits)) != partition) {
            for (std::size_t i = 0; i < config_.ops.size(); ++i) {
                kernel::state_init(config_.ops[i].op, scratch);
                kernel::state_deserialize(config_.ops[i].op, scratch, r);
            }
            continue;
        }
        const std::size_t index = find_or_insert(key, key_len, h);
        for (std::size_t i = 0; i < config_.ops.size(); ++i) {
            kernel::state_init(config_.ops[i].op, scratch);
            kernel::state_deserialize(config_.ops[i].op, scratch, r);
            kernel::state_merge(config_.ops[i].op, entry_state(index, i), scratch);
        }
        maybe_spill();
    }
    if (bits == 0 || partition == 0)
        processed_ += nprocessed;
}

void AggregationDB::clear() {
    key_arena_.clear();
    state_arena_.clear();
    entries_.clear();
    table_.assign(initial_table_slots, 0);
    spill_.reset(); // the memory budget itself stays configured
    processed_ = 0;
    stats_     = Stats{};
}

} // namespace calib
