#include "aggregation_db.hpp"

#include "../common/bytebuf.hpp"
#include "../common/hash.hpp"
#include "../common/log.hpp"
#include "../obs/metrics.hpp"

#include <cassert>
#include <cstring>

namespace calib {

namespace {

// Global mirrors of the per-DB Stats: every AggregationDB instance (all
// workers, online channels) feeds the same instruments, so --stats shows
// whole-process hash-table behavior.
obs::Counter aggdb_records("aggdb.records");
obs::Counter aggdb_lookups("aggdb.lookups");
obs::Counter aggdb_probe_steps("aggdb.probe_steps");
obs::Counter aggdb_inserts("aggdb.inserts");
obs::Counter aggdb_merges("aggdb.merges");
obs::Timer aggdb_flush("aggdb.flush");

constexpr std::size_t initial_table_slots = 256;
constexpr std::uint32_t serialize_magic   = 0xCA11B0DBu;

std::uint64_t hash_key(const Entry* key, std::size_t len) {
    std::uint64_t h = fnv1a_offset;
    for (std::size_t i = 0; i < len; ++i) {
        h = fnv1a_value(key[i].attribute, h);
        h = fnv1a_value(key[i].value.hash(), h);
    }
    return mix64(h);
}

bool keys_equal(const Entry* a, const Entry* b, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i)
        if (!(a[i] == b[i]))
            return false;
    return true;
}

const Variant* find_entry(std::span<const Entry> record, id_t attribute) {
    for (const Entry& e : record)
        if (e.attribute == attribute)
            return &e.value;
    return nullptr;
}

} // namespace

AggregationDB::AggregationDB(AggregationConfig config, AttributeRegistry* registry)
    : config_(std::move(config)), registry_(registry) {
    assert(registry_);

    key_ids_.assign(config_.key.attributes.size(), invalid_id);
    op_ids_.assign(config_.ops.size(), invalid_id);
    op_fallback_ids_.assign(config_.ops.size(), invalid_id);

    op_state_offsets_.reserve(config_.ops.size());
    for (const AggOpConfig& op : config_.ops) {
        op_state_offsets_.push_back(state_stride_);
        state_stride_ += kernel::state_size(op.op) / sizeof(std::uint64_t);
    }

    table_.assign(initial_table_slots, 0);
}

void AggregationDB::reserve(std::size_t entries) {
    entries_.reserve(entries);
    key_arena_.reserve(entries * (config_.key.all ? 8 : config_.key.attributes.size()));
    state_arena_.reserve(entries * state_stride_);
    if (entries * 2 > table_.size())
        grow_table(entries * 2);
}

void AggregationDB::resolve_ids() {
    const std::size_t gen = registry_->generation();
    if (fully_resolved_ || gen == resolved_generation_)
        return;
    resolved_generation_ = gen;

    bool all     = true;
    bool changed = false;
    for (std::size_t i = 0; i < config_.key.attributes.size(); ++i) {
        if (key_ids_[i] == invalid_id) {
            Attribute a = registry_->find(config_.key.attributes[i]);
            if (a.valid()) {
                key_ids_[i] = a.id();
                changed     = true;
            } else {
                all = false;
            }
        }
    }
    for (std::size_t i = 0; i < config_.ops.size(); ++i) {
        const AggOpConfig& op = config_.ops[i];
        if (agg_op_is_nullary(op.op))
            continue;
        if (op_ids_[i] == invalid_id) {
            Attribute a = registry_->find(op.attribute);
            if (a.valid()) {
                op_ids_[i] = a.id();
                changed    = true;
            } else {
                all = false;
            }
        }
        if (op_fallback_ids_[i] == invalid_id) {
            // allow re-aggregating already-aggregated profiles: sum(x) also
            // accepts a "sum#x" input column (paper §VI-B second stage)
            Attribute a =
                registry_->find(AggOpConfig{op.op, op.attribute, ""}.result_label());
            if (a.valid()) {
                op_fallback_ids_[i] = a.id();
                changed             = true;
            } else {
                all = false;
            }
        }
    }
    // newly resolved targets invalidate the implicit-key skip cache
    if (changed)
        std::fill(implicit_skip_.begin(), implicit_skip_.end(),
                  static_cast<std::uint8_t>(2));
    fully_resolved_ = all;
}

bool AggregationDB::skip_in_implicit_key(id_t attr) {
    if (attr >= implicit_skip_.size()) {
        const std::size_t old = implicit_skip_.size();
        implicit_skip_.resize(attr + 1, 2); // 2 = unknown
        (void)old;
    }
    std::uint8_t& flag = implicit_skip_[attr];
    if (flag == 2) {
        Attribute a = registry_->get(attr);
        bool skip   = !a.valid() || a.skip_in_key() || a.is_hidden();
        if (!skip) {
            // aggregation targets never appear in implicit keys
            for (std::size_t i = 0; i < config_.ops.size(); ++i) {
                if (op_ids_[i] == attr || op_fallback_ids_[i] == attr) {
                    skip = true;
                    break;
                }
            }
            // aggregatable metric values (e.g. time.duration) are inputs,
            // not grouping dimensions
            if (a.is_aggregatable())
                skip = true;
        }
        flag = skip ? 1 : 0;
    }
    return flag != 0;
}

void AggregationDB::process(std::span<const Entry> record) {
    resolve_ids();

    // mirror snapshot capacity: entries beyond max_entries are dropped
    if (record.size() > SnapshotRecord::max_entries)
        record = record.first(SnapshotRecord::max_entries);

    Entry key[SnapshotRecord::max_entries];
    std::size_t key_len = 0;

    if (config_.key.all) {
        for (const Entry& e : record)
            if (!skip_in_implicit_key(e.attribute))
                key[key_len++] = e;
        // stable: duplicate attributes keep their record order, so two
        // records with the same entry multiset always map to the same key
        std::stable_sort(key, key + key_len, [](const Entry& a, const Entry& b) {
            return a.attribute < b.attribute;
        });
    } else {
        for (std::size_t i = 0; i < key_ids_.size(); ++i) {
            const id_t attr = key_ids_[i];
            const Variant* found =
                attr == invalid_id ? nullptr : find_entry(record, attr);
            const Variant v = found ? *found : Variant();
            // canonicalize: an absent key attribute always contributes the
            // same (invalid_id, empty) entry, so groups do not depend on
            // when the attribute was first defined
            key[key_len++] = Entry(v.empty() ? invalid_id : attr, v);
        }
    }

    const std::uint64_t h   = hash_key(key, key_len);
    const std::size_t index = find_or_insert(key, key_len, h);
    update_ops(index, record);
    ++processed_;
    aggdb_records.add();
}

void AggregationDB::process_offline(const RecordMap& record) {
    SnapshotRecord rec;
    for (const auto& [name, value] : record) {
        Attribute a = registry_->create(name, value.type());
        rec.append(a.id(), value);
    }
    process(rec);
}

std::size_t AggregationDB::find_or_insert(const Entry* key, std::size_t key_len,
                                          std::uint64_t hash) {
    ++stats_.lookups;
    aggdb_lookups.add();
    const std::size_t mask = table_.size() - 1;
    std::size_t slot       = hash & mask;

    while (true) {
        const std::uint32_t stored = table_[slot];
        if (stored == 0)
            break;
        const EntryRec& e = entries_[stored - 1];
        if (e.hash == hash && e.key_len == key_len &&
            keys_equal(key_arena_.data() + e.key_offset, key, key_len))
            return stored - 1;
        ++stats_.collisions;
        aggdb_probe_steps.add();
        slot = (slot + 1) & mask;
    }

    // insert
    ++stats_.inserts;
    aggdb_inserts.add();
    EntryRec rec;
    rec.hash         = hash;
    rec.key_offset   = static_cast<std::uint32_t>(key_arena_.size());
    rec.key_len      = static_cast<std::uint32_t>(key_len);
    rec.state_offset = static_cast<std::uint32_t>(state_arena_.size());

    key_arena_.insert(key_arena_.end(), key, key + key_len);
    state_arena_.resize(state_arena_.size() + state_stride_, 0);
    for (std::size_t i = 0; i < config_.ops.size(); ++i)
        kernel::state_init(config_.ops[i].op,
                           state_arena_.data() + rec.state_offset + op_state_offsets_[i]);

    entries_.push_back(rec);
    table_[slot] = static_cast<std::uint32_t>(entries_.size());

    if (entries_.size() * 10 > table_.size() * 7)
        grow_table(table_.size() * 2);

    return entries_.size() - 1;
}

void AggregationDB::grow_table(std::size_t min_slots) {
    std::size_t slots = table_.size();
    while (slots < min_slots)
        slots *= 2;
    table_.assign(slots, 0);
    const std::size_t mask = slots - 1;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        std::size_t slot = entries_[i].hash & mask;
        while (table_[slot] != 0)
            slot = (slot + 1) & mask;
        table_[slot] = static_cast<std::uint32_t>(i + 1);
    }
}

std::uint64_t* AggregationDB::entry_state(std::size_t entry_index, std::size_t op_index) {
    return state_arena_.data() + entries_[entry_index].state_offset +
           op_state_offsets_[op_index];
}

const std::uint64_t* AggregationDB::entry_state(std::size_t entry_index,
                                                std::size_t op_index) const {
    return state_arena_.data() + entries_[entry_index].state_offset +
           op_state_offsets_[op_index];
}

void AggregationDB::update_ops(std::size_t entry_index, std::span<const Entry> record) {
    for (std::size_t i = 0; i < config_.ops.size(); ++i) {
        const AggOp op = config_.ops[i].op;
        if (agg_op_is_nullary(op)) {
            kernel::state_update(op, entry_state(entry_index, i), Variant());
            continue;
        }
        const Variant* v =
            op_ids_[i] != invalid_id ? find_entry(record, op_ids_[i]) : nullptr;
        if ((!v || v->empty()) && op_fallback_ids_[i] != invalid_id)
            v = find_entry(record, op_fallback_ids_[i]);
        if (v && !v->empty())
            kernel::state_update(op, entry_state(entry_index, i), *v);
    }
}

std::size_t AggregationDB::bytes() const noexcept {
    return key_arena_.capacity() * sizeof(Entry) +
           state_arena_.capacity() * sizeof(std::uint64_t) +
           entries_.capacity() * sizeof(EntryRec) +
           table_.capacity() * sizeof(std::uint32_t);
}

void AggregationDB::flush(const std::function<void(RecordMap&&)>& sink) const {
    obs::Timer::Scope flush_scope(aggdb_flush);
    // percent_total denominators, one per configured op
    std::vector<double> denominators(config_.ops.size(), 0.0);
    for (std::size_t i = 0; i < config_.ops.size(); ++i) {
        if (config_.ops[i].op != AggOp::PercentTotal)
            continue;
        for (std::size_t e = 0; e < entries_.size(); ++e)
            denominators[i] +=
                kernel::state_sum_value(config_.ops[i].op, entry_state(e, i));
    }

    for (std::size_t e = 0; e < entries_.size(); ++e) {
        RecordMap out;
        const EntryRec& rec = entries_[e];
        out.reserve(rec.key_len + config_.ops.size());
        for (std::uint32_t k = 0; k < rec.key_len; ++k) {
            const Entry& ke = key_arena_[rec.key_offset + k];
            if (ke.value.empty() || ke.attribute == invalid_id)
                continue;
            out.append(registry_->get(ke.attribute).name(), ke.value);
        }
        for (std::size_t i = 0; i < config_.ops.size(); ++i)
            kernel::state_result(config_.ops[i].op, entry_state(e, i), config_.ops[i],
                                 out, denominators[i]);
        sink(std::move(out));
    }
}

std::vector<RecordMap> AggregationDB::flush() const {
    std::vector<RecordMap> out;
    out.reserve(entries_.size());
    flush([&out](RecordMap&& r) { out.push_back(std::move(r)); });
    return out;
}

void AggregationDB::merge(const AggregationDB& other) {
    assert(config_.ops.size() == other.config_.ops.size());
    aggdb_merges.add();
    reserve(entries_.size() + other.entries_.size());
    for (std::size_t e = 0; e < other.entries_.size(); ++e) {
        const EntryRec& rec = other.entries_[e];
        const Entry* key    = other.key_arena_.data() + rec.key_offset;
        const std::size_t index = find_or_insert(key, rec.key_len, rec.hash);
        for (std::size_t i = 0; i < config_.ops.size(); ++i)
            kernel::state_merge(config_.ops[i].op, entry_state(index, i),
                                other.entry_state(e, i));
    }
    processed_ += other.processed_;
}

void AggregationDB::merge(AggregationDB&& other) {
    assert(config_.ops.size() == other.config_.ops.size());
    assert(registry_ == other.registry_);
    // the fall-through path counts in merge(const&); count the fast paths here
    if (other.entries_.empty()) {
        aggdb_merges.add();
        processed_ += other.processed_;
        other.clear();
        return;
    }
    if (entries_.empty()) {
        aggdb_merges.add();
        // steal the arenas wholesale — no key copies, no rehashing
        key_arena_.swap(other.key_arena_);
        state_arena_.swap(other.state_arena_);
        entries_.swap(other.entries_);
        table_.swap(other.table_);
        key_ids_.swap(other.key_ids_);
        op_ids_.swap(other.op_ids_);
        op_fallback_ids_.swap(other.op_fallback_ids_);
        implicit_skip_.swap(other.implicit_skip_);
        std::swap(resolved_generation_, other.resolved_generation_);
        std::swap(fully_resolved_, other.fully_resolved_);
        processed_ += other.processed_;
        stats_.lookups += other.stats_.lookups;
        stats_.collisions += other.stats_.collisions;
        stats_.inserts += other.stats_.inserts;
        other.clear();
        return;
    }
    merge(static_cast<const AggregationDB&>(other));
    other.clear();
}

std::vector<std::byte> AggregationDB::serialize() const {
    std::vector<std::byte> buf;
    ByteWriter w(buf);
    w.put(serialize_magic);
    w.put(static_cast<std::uint32_t>(config_.ops.size()));
    w.put(static_cast<std::uint64_t>(processed_));
    w.put(static_cast<std::uint32_t>(entries_.size()));

    for (std::size_t e = 0; e < entries_.size(); ++e) {
        const EntryRec& rec = entries_[e];
        w.put(static_cast<std::uint16_t>(rec.key_len));
        for (std::uint32_t k = 0; k < rec.key_len; ++k) {
            const Entry& ke = key_arena_[rec.key_offset + k];
            if (ke.attribute == invalid_id)
                w.put_string("");
            else
                w.put_string(registry_->get(ke.attribute).name_view());
            w.put_variant(ke.value);
        }
        for (std::size_t i = 0; i < config_.ops.size(); ++i)
            kernel::state_serialize(config_.ops[i].op, entry_state(e, i), w);
    }
    return buf;
}

void AggregationDB::merge_serialized(std::span<const std::byte> data) {
    ByteReader r(data);
    if (r.get<std::uint32_t>() != serialize_magic)
        throw std::runtime_error("AggregationDB: bad serialization magic");
    const auto nops = r.get<std::uint32_t>();
    if (nops != config_.ops.size())
        throw std::runtime_error("AggregationDB: op-count mismatch in merge");
    const auto nprocessed = r.get<std::uint64_t>();
    const auto nentries   = r.get<std::uint32_t>();
    reserve(entries_.size() + nentries);

    // scratch for one deserialized kernel state (largest op state)
    std::uint64_t scratch[kernel::histogram_bins + 4];

    Entry key[SnapshotRecord::max_entries];
    for (std::uint32_t e = 0; e < nentries; ++e) {
        const auto key_len = r.get<std::uint16_t>();
        if (key_len > SnapshotRecord::max_entries)
            throw std::runtime_error("AggregationDB: oversized key in merge buffer");
        for (std::uint16_t k = 0; k < key_len; ++k) {
            const std::string_view name = r.get_string();
            const Variant value         = r.get_variant();
            id_t attr                   = invalid_id;
            if (!name.empty())
                attr = registry_->create(name, value.type()).id();
            key[k] = Entry(attr, value);
        }
        const std::uint64_t h   = hash_key(key, key_len);
        const std::size_t index = find_or_insert(key, key_len, h);
        for (std::size_t i = 0; i < config_.ops.size(); ++i) {
            kernel::state_init(config_.ops[i].op, scratch);
            kernel::state_deserialize(config_.ops[i].op, scratch, r);
            kernel::state_merge(config_.ops[i].op, entry_state(index, i), scratch);
        }
    }
    processed_ += nprocessed;
}

void AggregationDB::clear() {
    key_arena_.clear();
    state_arena_.clear();
    entries_.clear();
    table_.assign(initial_table_slots, 0);
    processed_ = 0;
    stats_     = Stats{};
}

} // namespace calib
