// The aggregation database (paper §IV-B, Figure 2).
//
// An AggregationDB keeps one aggregation entry per unique combination of
// key-attribute values. Incoming snapshot records are folded in with
// streaming reduction: extract the key entries, hash them, look up (or
// insert) the aggregation entry, and update the operator states in place.
//
// Databases are mergeable (for cross-thread flushes and the cross-process
// tree reduction) and serializable (for sending partial results between
// ranks). The same class backs the online aggregation service and the
// offline query engine.
//
// Thread-safety: none by design — the runtime keeps one DB per monitored
// thread (paper §IV-B: "this design avoids the use of thread locks").
//
// Two optional capabilities for the columnar offline pipeline:
//
//   - process_batch() folds a whole RecordBatch in one call: key columns
//     and op inputs resolve to column indices once per batch, the probe
//     loop runs over precomputed row hashes (with a last-key memo for
//     clustered streams), and kernel updates read column vectors directly.
//     Byte-identical to calling process() per selected row.
//
//   - set_memory_budget() bounds the in-memory group table: when the live
//     entry count reaches the budget-derived limit, the current entries
//     are sorted by key and appended to a temp spill file as one run, and
//     the table restarts empty. flush()/serialize() then merge groups
//     across runs (plus the live table) with one cursor per run. The
//     spill trigger is a deterministic entry-count threshold, so batched
//     and record-at-a-time runs spill at identical record boundaries.
#pragma once

#include "kernel.hpp"
#include "ops.hpp"

#include "../common/attribute.hpp"
#include "../common/idrecord.hpp"
#include "../common/recordbatch.hpp"
#include "../common/recordmap.hpp"
#include "../common/snapshot.hpp"

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace calib {

class AggregationDB {
public:
    /// \param config the aggregation scheme (ops + key)
    /// \param registry attribute dictionary used to resolve labels; must
    ///        outlive the database
    AggregationDB(AggregationConfig config, AttributeRegistry* registry);

    AggregationDB(AggregationDB&&) noexcept;
    AggregationDB& operator=(AggregationDB&&) noexcept;
    AggregationDB(const AggregationDB&)            = delete;
    AggregationDB& operator=(const AggregationDB&) = delete;
    ~AggregationDB();

    /// Preallocate room for \a entries aggregation entries (keeps the
    /// snapshot-processing path free of reallocations until exceeded).
    void reserve(std::size_t entries);

    /// Fold one record — a flat sequence of (attribute-id, value) entries —
    /// into the database (streaming reduction). Entries beyond
    /// SnapshotRecord::max_entries are ignored (mirroring snapshot
    /// capacity, so the online and offline paths agree).
    void process(std::span<const Entry> record);

    /// Fold one snapshot record into the database.
    void process(const SnapshotRecord& record) {
        process(std::span<const Entry>(record.begin(), record.size()));
    }

    /// Fold one id-based offline record (resolve-once reader output).
    void process(const IdRecord& record) { process(record.span()); }

    /// Fold the selected rows of a record batch (columnar hot path): key
    /// and op attributes resolve to columns once, then a tight probe +
    /// per-column update loop runs over the selection vector. Overflow
    /// rows and rows beyond SnapshotRecord::max_entries fall back to
    /// process(). Byte-identical to record-at-a-time processing.
    void process_batch(const RecordBatch& batch,
                       std::span<const std::uint32_t> selection);

    /// Bound live key+state memory to roughly \a bytes: beyond a
    /// budget-derived entry count, sorted runs of partial aggregates spill
    /// to a temp file and merge again at flush()/serialize(). 0 (default)
    /// = unbounded. The threshold is deterministic in (config, budget),
    /// never allocator state, so equal inputs spill identically.
    void set_memory_budget(std::size_t bytes);
    std::size_t memory_budget() const noexcept { return memory_budget_; }

    /// True once at least one run has spilled. Flush emission switches
    /// from insertion order to key-sorted merge order (callers that need
    /// a canonical order sort rows anyway).
    bool spilled() const noexcept { return spill_ != nullptr; }

    /// Compatibility shim for name-based callers: attributes are resolved
    /// or created in the registry per record, then processed like a
    /// snapshot. The id-based pipeline (readers emitting IdRecords into
    /// process()) replaces this on the hot path; prefer it for bulk data.
    void process_offline(const RecordMap& record);

    /// Number of aggregation entries (unique keys seen).
    std::size_t size() const noexcept { return entries_.size(); }
    bool empty() const noexcept { return entries_.empty(); }

    /// Number of records processed so far (including merged-in ones).
    std::uint64_t num_processed() const noexcept { return processed_; }

    /// Approximate memory footprint of keys + states + table, in bytes.
    std::size_t bytes() const noexcept;

    /// Emit one output record per aggregation entry: the (non-empty) key
    /// attributes followed by the operator results. Entries are emitted in
    /// insertion order.
    void flush(const std::function<void(RecordMap&&)>& sink) const;
    std::vector<RecordMap> flush() const;

    /// Merge all entries of \a other into this database. Both databases
    /// must use the same AggregationConfig and the same registry.
    void merge(const AggregationDB& other);

    /// Destructive merge: like merge(const&), but an empty destination
    /// steals \a other's arenas wholesale instead of copying them — the
    /// common case in a pairwise reduction tree, where half the merges at
    /// every level target a freshly-drained database. \a other is empty
    /// afterwards.
    void merge(AggregationDB&& other);

    /// Split the live entries into 2^bits databases by the top \a bits of
    /// each entry's key hash (the radix merge's partition function). Key
    /// and state blocks are copied verbatim — no kernel calls, so states
    /// are bitwise-preserved. This database is left empty (processed count
    /// and stats stay). bits must be in [1, 8]; must not have spilled.
    std::vector<AggregationDB> extract_partitions(unsigned bits);

    /// Append every entry of \a other, whose keys are disjoint from this
    /// database's by contract (radix partitions): key/state blocks copy
    /// verbatim and table slots probe to the first empty slot with no key
    /// comparisons or kernel calls. Much cheaper than merge() for the
    /// radix concatenation step. \a other is empty afterwards.
    void absorb_disjoint(AggregationDB&& other);

    /// Partition-filtered variant of merge_serialized(): folds in only the
    /// entries whose key hash lands in \a partition (top \a bits), so each
    /// radix partition task can replay early-flush buffers independently.
    /// The buffer's record count is credited only when partition == 0, so
    /// replaying every partition of one buffer counts it exactly once.
    void merge_serialized(std::span<const std::byte> data, unsigned bits,
                          std::size_t partition);

    /// Entry count recorded in a serialize() buffer header (used by the
    /// engine's adaptive merge selector to size early-flushed partials
    /// without re-parsing the buffer).
    static std::size_t serialized_entry_count(std::span<const std::byte> data);

    /// Serialize all entries (attribute labels by name, so the buffer is
    /// meaningful across registries).
    std::vector<std::byte> serialize() const;

    /// Merge a buffer produced by serialize() into this database.
    void merge_serialized(std::span<const std::byte> data);

    /// Drop all entries (config stays).
    void clear();

    const AggregationConfig& config() const noexcept { return config_; }
    AttributeRegistry* registry() const noexcept { return registry_; }

    /// Statistics for the overhead study.
    struct Stats {
        std::uint64_t lookups    = 0;
        std::uint64_t collisions = 0; ///< probe steps beyond the first slot
        std::uint64_t inserts    = 0;
        std::uint64_t spill_runs  = 0; ///< sorted runs written to the spill file
        std::uint64_t spill_bytes = 0; ///< bytes written to the spill file
    };
    const Stats& stats() const noexcept { return stats_; }

private:
    struct EntryRec {
        std::uint64_t hash;
        std::uint32_t key_offset; ///< index into key_arena_
        std::uint32_t key_len;    ///< number of key entries
        std::uint32_t state_offset; ///< index into state_arena_ (u64 words)
    };

    struct SpillFile; ///< temp file + run directory (aggregation_db.cpp)

    /// Per-row key location in the batch scratch arena; len == UINT32_MAX
    /// marks a row that fell back to record-at-a-time process().
    struct RowKey {
        std::uint64_t hash;
        std::uint32_t offset;
        std::uint32_t len;
    };

    void resolve_ids();
    bool skip_in_implicit_key(id_t attr);
    std::size_t find_or_insert(const Entry* key, std::size_t key_len, std::uint64_t hash);
    void grow_table(std::size_t min_slots);
    /// Copy one entry's key/state blocks from \a src verbatim and insert
    /// its table slot without key comparisons (caller guarantees the key
    /// is not present).
    void append_entry_unchecked(const AggregationDB& src, const EntryRec& rec);
    void merge_serialized_impl(std::span<const std::byte> data, unsigned bits,
                               std::size_t partition);
    void update_ops(std::size_t entry_index, std::span<const Entry> record);
    void update_ops_cols(std::size_t entry_index, const RecordBatch& batch,
                         std::size_t row);
    std::uint64_t* entry_state(std::size_t entry_index, std::size_t op_index);
    const std::uint64_t* entry_state(std::size_t entry_index, std::size_t op_index) const;

    void maybe_spill();
    void spill_current_run();
    /// Visit every group merged across all spill runs and the live table,
    /// in spill-key order; \a fn receives the key entries and the merged
    /// state block (state_stride_ words, op_state_offsets_ layout).
    void for_each_merged_group(
        const std::function<void(const Entry*, std::size_t, const std::uint64_t*)>& fn)
        const;

    AggregationConfig config_;
    AttributeRegistry* registry_;

    // lazily resolved attribute ids (invalid_id until the attribute exists)
    std::vector<id_t> key_ids_;
    std::vector<id_t> op_ids_;          // targets
    std::vector<id_t> op_fallback_ids_; // result-label fallbacks (re-aggregation)
    std::size_t resolved_generation_ = static_cast<std::size_t>(-1);
    bool fully_resolved_             = false;

    // per-attribute-id flag cache for implicit ("group by everything") keys
    std::vector<std::uint8_t> implicit_skip_;

    std::vector<std::size_t> op_state_offsets_; // u64 words within an entry block
    std::size_t state_stride_ = 0;              // u64 words per entry

    std::vector<Entry> key_arena_;
    std::vector<std::uint64_t> state_arena_;
    std::vector<EntryRec> entries_;
    std::vector<std::uint32_t> table_; // open addressing; 0 = empty, else index+1

    // spill state (set_memory_budget)
    std::size_t memory_budget_ = 0; ///< bytes; 0 = unbounded
    std::size_t spill_limit_   = 0; ///< live-entry threshold; 0 = unbounded
    std::unique_ptr<SpillFile> spill_;

    // reused process_batch scratch
    std::vector<std::uint32_t> key_plan_;       ///< implicit-key column indices
    std::vector<std::int32_t> key_cols_;        ///< explicit-key column per key id
    std::vector<std::int32_t> op_cols_;         ///< op input column per op
    std::vector<std::int32_t> op_fallback_cols_;
    std::vector<Entry> scratch_keys_;           ///< per-batch key arena
    std::vector<RowKey> row_keys_;
    std::vector<std::uint64_t> hash_scratch_;   ///< distinct-key estimate
    IdRecord fallback_rec_;                     ///< oversized-row materialize

    std::uint64_t processed_ = 0;
    Stats stats_;
};

} // namespace calib
