// WindowedAggregator: a ring of mergeable pane sub-aggregates backing
// CalQL WINDOW/SLIDE queries.
//
// Every pane is a full AggregationDB covering one slide-width of the time
// axis (see window.hpp for the pane arithmetic). Records route into the
// pane their timestamp falls in; the *watermark* (largest pane index seen)
// defines the live range — the trailing ceil(W/S) panes — and anything
// older retires. The window result is a fold of the live panes in
// ascending pane order, so no kernel needs subtractable state, and the
// fold shape is a pure function of the pane set: replaying a static file
// yields byte-identical results for every thread count, merge strategy,
// and batch size (the engine merges windowed partials pane-by-pane, and
// per-pane states inherit the non-windowed byte-identity guarantee).
//
// Retirement is monotone-safe under parallel merges: a pane expired
// against one partial's watermark is expired against the merged (maximum)
// watermark too, so early retirement in a worker never changes the final
// live set.
#pragma once

#include "aggregation_db.hpp"
#include "window.hpp"

#include "../common/attribute.hpp"
#include "../common/idrecord.hpp"
#include "../common/recordmap.hpp"

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

namespace calib {

class WindowedAggregator {
public:
    /// \param config the aggregation scheme each pane runs
    /// \param window duration / slide / time attribute (must be enabled())
    /// \param registry attribute dictionary; must outlive the aggregator
    WindowedAggregator(AggregationConfig config, WindowSpec window,
                       AttributeRegistry* registry);

    WindowedAggregator(WindowedAggregator&&) noexcept            = default;
    WindowedAggregator& operator=(WindowedAggregator&&) noexcept = default;

    /// Fold one id-based record into its pane. Records without a usable
    /// timestamp are counted in dropped_no_time(); records whose pane has
    /// already retired are counted in dropped_late().
    void process(const IdRecord& record);

    /// Name-based compatibility path (daemon replay, RecordMap callers).
    void process_offline(const RecordMap& record);

    /// Total aggregation entries across live panes (early-flush watermark).
    std::size_t entries() const noexcept;
    bool empty() const noexcept { return panes_.empty(); }
    std::size_t pane_count() const noexcept { return panes_.size(); }

    /// Bound each pane's in-memory group table (see AggregationDB).
    void set_memory_budget(std::size_t bytes);

    /// Pane-wise destructive merge of another aggregator running the same
    /// (config, window) over the same registry; watermarks combine as max.
    void merge(WindowedAggregator&& other);

    /// Pane-wise serialized state: watermark + drop counters + one
    /// AggregationDB buffer per live pane (meaningful across registries).
    std::vector<std::byte> serialize() const;
    void merge_serialized(std::span<const std::byte> data);

    /// Total entry count recorded in a serialize() buffer (the windowed
    /// counterpart of AggregationDB::serialized_entry_count; the engine's
    /// adaptive merge selector sizes early-flushed partials with it).
    static std::size_t serialized_entry_count(std::span<const std::byte> data);

    /// Drop all pane contents and the drop counters (they travel inside
    /// serialize() buffers, like AggregationDB's record count). The
    /// watermark stays: records older than an already-retired pane must
    /// keep dropping after an early flush.
    void clear();

    /// Fold the live panes (ascending pane index) into one result set.
    /// Non-destructive; the fold shape is fixed, so it is deterministic.
    std::vector<RecordMap> flush() const;

    const WindowSpec& window() const noexcept { return window_; }
    const AggregationConfig& config() const noexcept { return config_; }
    AttributeRegistry* registry() const noexcept { return registry_; }

    std::optional<std::int64_t> watermark() const noexcept { return watermark_; }
    std::uint64_t dropped_late() const noexcept { return dropped_late_; }
    std::uint64_t dropped_no_time() const noexcept { return dropped_no_time_; }

private:
    /// Smallest live pane index, given the current watermark.
    std::int64_t live_floor() const noexcept;
    /// Route a timestamp to its pane, or nullptr when dropped (counted).
    AggregationDB* pane_for(const Variant& timestamp);
    void retire_expired();

    AggregationConfig config_;
    WindowSpec window_;
    AttributeRegistry* registry_;

    // lazily resolved time-attribute id (name-resolution caching in the
    // same style as AggregationDB)
    id_t time_id_                    = invalid_id;
    std::size_t resolved_generation_ = static_cast<std::size_t>(-1);

    std::map<std::int64_t, AggregationDB> panes_; ///< ascending pane index
    std::optional<std::int64_t> watermark_;
    std::size_t memory_budget_    = 0;
    std::uint64_t dropped_late_   = 0;
    std::uint64_t dropped_no_time_ = 0;
};

} // namespace calib
