#include "windowed_db.hpp"

#include "../common/bytebuf.hpp"

#include <stdexcept>
#include <utility>

namespace calib {

namespace {
// Windowed partial-state buffer magic (pane-wise AggregationDB buffers
// inside; distinct from the processor's raw-record buffer 0x0CA11B0F).
constexpr std::uint32_t window_magic = 0x0CA11B11u;
} // namespace

WindowedAggregator::WindowedAggregator(AggregationConfig config, WindowSpec window,
                                       AttributeRegistry* registry)
    : config_(std::move(config)), window_(std::move(window)), registry_(registry) {}

std::int64_t WindowedAggregator::live_floor() const noexcept {
    return *watermark_ - static_cast<std::int64_t>(window_.pane_count()) + 1;
}

void WindowedAggregator::retire_expired() {
    if (!watermark_)
        return;
    panes_.erase(panes_.begin(), panes_.lower_bound(live_floor()));
}

AggregationDB* WindowedAggregator::pane_for(const Variant& timestamp) {
    const std::optional<std::int64_t> p = pane_index(timestamp, window_.slide());
    if (!p) {
        ++dropped_no_time_;
        return nullptr;
    }
    if (watermark_ && *p < live_floor()) {
        // the pane this record belongs to has already retired; dropping it
        // here (instead of resurrecting the pane) keeps retirement monotone
        ++dropped_late_;
        return nullptr;
    }
    auto it = panes_.find(*p);
    if (it == panes_.end()) {
        it = panes_.try_emplace(*p, config_, registry_).first;
        if (memory_budget_ > 0)
            it->second.set_memory_budget(memory_budget_);
    }
    if (!watermark_ || *p > *watermark_) {
        watermark_ = *p;
        retire_expired();
    }
    return &it->second;
}

void WindowedAggregator::process(const IdRecord& record) {
    if (time_id_ == invalid_id && resolved_generation_ != registry_->generation()) {
        resolved_generation_ = registry_->generation();
        time_id_             = registry_->find(window_.time_attribute()).id();
    }
    const Variant ts = time_id_ != invalid_id ? record.get(time_id_) : Variant();
    if (AggregationDB* pane = pane_for(ts))
        pane->process(record);
}

void WindowedAggregator::process_offline(const RecordMap& record) {
    if (AggregationDB* pane = pane_for(record.get(window_.time_attribute())))
        pane->process_offline(record);
}

std::size_t WindowedAggregator::entries() const noexcept {
    std::size_t n = 0;
    for (const auto& [idx, db] : panes_)
        n += db.size();
    return n;
}

void WindowedAggregator::set_memory_budget(std::size_t bytes) {
    memory_budget_ = bytes;
    for (auto& [idx, db] : panes_)
        db.set_memory_budget(bytes);
}

void WindowedAggregator::merge(WindowedAggregator&& other) {
    dropped_late_ += other.dropped_late_;
    dropped_no_time_ += other.dropped_no_time_;
    other.dropped_late_ = other.dropped_no_time_ = 0;
    if (other.watermark_ && (!watermark_ || *other.watermark_ > *watermark_))
        watermark_ = other.watermark_;
    for (auto& [idx, db] : other.panes_) {
        auto it = panes_.find(idx);
        if (it == panes_.end()) {
            it = panes_.try_emplace(idx, config_, registry_).first;
            if (memory_budget_ > 0)
                it->second.set_memory_budget(memory_budget_);
        }
        it->second.merge(std::move(db));
    }
    other.panes_.clear();
    retire_expired();
}

std::vector<std::byte> WindowedAggregator::serialize() const {
    std::vector<std::byte> buf;
    ByteWriter w(buf);
    w.put(window_magic);
    w.put(static_cast<std::uint8_t>(watermark_.has_value() ? 1 : 0));
    w.put(static_cast<std::int64_t>(watermark_.value_or(0)));
    w.put(dropped_late_);
    w.put(dropped_no_time_);
    w.put(static_cast<std::uint32_t>(panes_.size()));
    for (const auto& [idx, db] : panes_) {
        w.put(static_cast<std::int64_t>(idx));
        const std::vector<std::byte> sub = db.serialize();
        w.put(static_cast<std::uint64_t>(sub.size()));
        w.put_bytes(sub.data(), sub.size());
    }
    return buf;
}

void WindowedAggregator::merge_serialized(std::span<const std::byte> data) {
    ByteReader r(data);
    if (r.get<std::uint32_t>() != window_magic)
        throw std::runtime_error("WindowedAggregator: bad buffer magic");
    const bool has_wm       = r.get<std::uint8_t>() != 0;
    const std::int64_t wm   = r.get<std::int64_t>();
    dropped_late_ += r.get<std::uint64_t>();
    dropped_no_time_ += r.get<std::uint64_t>();
    const auto npanes = r.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < npanes; ++i) {
        const auto idx = r.get<std::int64_t>();
        const auto len = static_cast<std::size_t>(r.get<std::uint64_t>());
        const std::span<const std::byte> sub = r.get_bytes(len);
        auto it = panes_.find(idx);
        if (it == panes_.end()) {
            it = panes_.try_emplace(idx, config_, registry_).first;
            if (memory_budget_ > 0)
                it->second.set_memory_budget(memory_budget_);
        }
        it->second.merge_serialized(sub);
    }
    if (has_wm && (!watermark_ || wm > *watermark_))
        watermark_ = wm;
    retire_expired();
}

std::size_t
WindowedAggregator::serialized_entry_count(std::span<const std::byte> data) {
    ByteReader r(data);
    if (r.get<std::uint32_t>() != window_magic)
        throw std::runtime_error("WindowedAggregator: bad buffer magic");
    r.get<std::uint8_t>();  // has-watermark flag
    r.get<std::int64_t>();  // watermark
    r.get<std::uint64_t>(); // dropped_late
    r.get<std::uint64_t>(); // dropped_no_time
    const auto npanes = r.get<std::uint32_t>();
    std::size_t n     = 0;
    for (std::uint32_t i = 0; i < npanes; ++i) {
        r.get<std::int64_t>(); // pane index
        const auto len = static_cast<std::size_t>(r.get<std::uint64_t>());
        n += AggregationDB::serialized_entry_count(r.get_bytes(len));
    }
    return n;
}

void WindowedAggregator::clear() {
    panes_.clear();
    dropped_late_ = dropped_no_time_ = 0;
}

std::vector<RecordMap> WindowedAggregator::flush() const {
    AggregationDB scratch(config_, registry_);
    if (memory_budget_ > 0)
        scratch.set_memory_budget(memory_budget_);
    if (watermark_) {
        // every pane is <= the watermark and retirement pruned anything
        // below the live floor, so the whole map is the live range
        for (const auto& [idx, db] : panes_) {
            if (db.spilled())
                // merge(const&) only folds the live table; a pane that
                // spilled under the memory budget must go through its
                // spill-aware serialized form or the spilled runs are lost
                scratch.merge_serialized(db.serialize());
            else
                scratch.merge(db);
        }
    }
    return scratch.flush();
}

} // namespace calib
