// Streaming aggregation kernels.
//
// Each operator owns a small POD state embedded in the aggregation
// database's state arena. Kernels support three operations:
//   update : fold one input value into the state (streaming reduction)
//   merge  : combine two partial states (cross-thread / cross-process)
//   result : emit the final value(s) as output attributes
// All states are mergeable, so the same kernels drive online event
// aggregation, offline queries, and the parallel tree reduction.
#pragma once

#include "ops.hpp"

#include "../common/bytebuf.hpp"
#include "../common/recordmap.hpp"
#include "../common/variant.hpp"

#include <cstddef>
#include <cstdint>

namespace calib::kernel {

struct CountState {
    std::uint64_t count;
};

/// Sum keeps an exact integer accumulator as long as all inputs are
/// integral and the running sum fits int64, switching to double on the
/// first floating-point input, on a UInt above INT64_MAX, or when the
/// integer sum would overflow (checked — never signed-overflow UB; the
/// state widens like Caliper's). NaN inputs are ignored
/// (docs/CORRECTNESS.md has the full value-domain policy table).
struct SumState {
    double dsum;
    std::int64_t isum;
    std::uint32_t kind; ///< 0 = no input yet, 1 = integer, 2 = double
    std::uint32_t updates;
};

struct MinMaxState {
    Variant value; ///< Empty until the first update
};

struct AvgState {
    double sum;
    std::uint64_t count;
};

/// Welford accumulator; merge via Chan et al.'s parallel formula.
struct VarianceState {
    std::uint64_t n;
    double mean;
    double m2;
};

inline constexpr int histogram_bins = 36;

/// log2-binned histogram of non-negative values: bin 0 holds v < 1
/// (deliberately including negatives and NaN — see histogram_bin_index),
/// bin i holds 2^(i-1) <= v < 2^i, the last bin is open-ended (including
/// +inf).
struct HistogramState {
    std::uint64_t bins[histogram_bins];
    double vmin;
    double vmax;
    std::uint64_t n;
};

int histogram_bin_index(double v) noexcept;

/// Size in bytes of the state for \a op (8-byte aligned).
std::size_t state_size(AggOp op) noexcept;

void state_init(AggOp op, void* state) noexcept;
void state_update(AggOp op, void* state, const Variant& value) noexcept;
void state_merge(AggOp op, void* state, const void* other) noexcept;

/// Append the operator result(s) to \a out under cfg.result_label().
/// \a percent_denominator is the overall total used by percent_total
/// (ignored by other operators).
void state_result(AggOp op, const void* state, const AggOpConfig& cfg,
                  RecordMap& out, double percent_denominator);

/// Raw sum value of a state, used to compute percent_total denominators.
double state_sum_value(AggOp op, const void* state) noexcept;

void state_serialize(AggOp op, const void* state, ByteWriter& w);
void state_deserialize(AggOp op, void* state, ByteReader& r);

} // namespace calib::kernel
