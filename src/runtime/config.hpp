// Runtime configuration profiles (paper §IV-A: "Users specify which
// building blocks to use in a runtime configuration profile, either in a
// configuration file or environment variables").
//
// A profile is a flat key=value map. Well-known keys:
//
//   services.enable        comma list: event,timer,aggregate,trace,recorder,sampler
//   aggregate.key          comma list of attributes, or "*" (everything)
//   aggregate.ops          e.g. "count,sum(time.duration)"
//   aggregate.query        full CalQL text (overrides key/ops; WHERE supported)
//   aggregate.prealloc     entries to preallocate per thread DB (default 1024)
//   trace.reserve          snapshot capacity hint for the trace buffer
//   recorder.filename      output path; %r is replaced by the rank/thread label
//   sampler.frequency      sampling frequency in Hz (default 100)
//   sampler.mode           "cooperative" (default) or "signal"
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace calib {

class RuntimeConfig {
public:
    RuntimeConfig() = default;
    RuntimeConfig(std::initializer_list<std::pair<const std::string, std::string>> kv)
        : values_(kv) {}

    /// Read CALI_-prefixed environment variables: CALI_SERVICES_ENABLE
    /// becomes "services.enable", etc.
    static RuntimeConfig from_env(const char* prefix = "CALI_");

    /// Parse "key=value" lines ('#' comments, blank lines ignored).
    static RuntimeConfig from_string(std::string_view text);

    /// Load a profile file in from_string() syntax.
    static RuntimeConfig from_file(const std::string& path);

    void set(std::string_view key, std::string_view value);

    std::string get(std::string_view key, std::string_view fallback = "") const;
    std::optional<std::string> find(std::string_view key) const;
    long get_int(std::string_view key, long fallback) const;
    double get_double(std::string_view key, double fallback) const;
    bool get_bool(std::string_view key, bool fallback) const;

    bool contains(std::string_view key) const;

    /// Overlay \a other on top of this profile (other wins).
    RuntimeConfig merged_with(const RuntimeConfig& other) const;

    const std::map<std::string, std::string>& values() const { return values_; }

private:
    std::map<std::string, std::string> values_;
};

} // namespace calib
