// Channels: one active measurement configuration (paper §IV-A). A channel
// owns a runtime-config profile and the callback lists through which the
// enabled services cooperate (Figure 2's snapshot-processing workflow):
//
//   pre_begin / pre_end / pre_set : fired before a blackboard update
//   snapshot                      : add measurement entries to a snapshot
//   process_snapshot              : consume a completed snapshot
//   flush                         : emit buffered results as records
//
// Services are independent building blocks registered by name; the channel
// instantiates the ones listed in its profile's services.enable key.
#pragma once

#include "config.hpp"
#include "threadstate.hpp"

#include "../common/attribute.hpp"
#include "../common/recordmap.hpp"
#include "../common/snapshot.hpp"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace calib {

class Caliper;
class Channel;

/// A service attaches callbacks to a channel at registration time.
using ServiceRegisterFn = std::function<void(Caliper&, Channel&)>;

class Channel {
public:
    using FlushFn = std::function<void(RecordMap&&)>;

    using UpdateCb   = std::function<void(Caliper&, Channel&, ThreadData&,
                                        const Attribute&, const Variant&)>;
    using SnapshotCb = std::function<void(Caliper&, Channel&, ThreadData&,
                                          ThreadChannelState&, SnapshotRecord&)>;
    using ProcessCb  = std::function<void(Caliper&, Channel&, ThreadData&,
                                         ThreadChannelState&, const SnapshotRecord&)>;
    using FlushCb    = std::function<void(Caliper&, Channel&, ThreadData&,
                                       ThreadChannelState&, const FlushFn&)>;
    using FinishCb   = std::function<void(Caliper&, Channel&)>;

    Channel(std::size_t id, std::string name, RuntimeConfig config)
        : id_(id), name_(std::move(name)), config_(std::move(config)) {}

    std::size_t id() const noexcept { return id_; }
    const std::string& name() const noexcept { return name_; }
    const RuntimeConfig& config() const noexcept { return config_; }

    bool active() const noexcept { return active_; }
    void set_active(bool a) noexcept { active_ = a; }

    /// Services enabled on this channel (canonical order).
    const std::vector<std::string>& services() const noexcept { return services_; }

    // callback lists (populated by services; invoked by Caliper)
    std::vector<UpdateCb> pre_begin_cbs;
    std::vector<UpdateCb> pre_end_cbs;
    std::vector<UpdateCb> pre_set_cbs;
    std::vector<SnapshotCb> snapshot_cbs;
    std::vector<ProcessCb> process_cbs;
    std::vector<FlushCb> flush_cbs;
    /// Consume the records produced by a thread flush (e.g. the recorder
    /// writing a per-process output file).
    std::vector<std::function<void(Caliper&, Channel&, ThreadData&,
                                   const std::vector<RecordMap>&)>>
        flush_sink_cbs;
    std::vector<FinishCb> finish_cbs; ///< fired when the channel is destroyed

    /// Channel-level metadata written as dataset globals by the recorder.
    std::map<std::string, Variant> metadata;

private:
    friend class Caliper;
    friend class ServiceRegistry;

    std::size_t id_;
    std::string name_;
    RuntimeConfig config_;
    std::vector<std::string> services_;
    bool active_ = true;
};

/// Global service registry. Built-in services self-register; users can add
/// custom services before creating channels.
class ServiceRegistry {
public:
    static ServiceRegistry& instance();

    void add(const std::string& name, int priority, ServiceRegisterFn fn);

    /// Instantiate \a names (comma list) on \a channel in priority order.
    /// Unknown service names are reported and skipped.
    void instantiate(Caliper& c, Channel& channel, const std::string& names);

    std::vector<std::string> available() const;

private:
    struct Entry {
        int priority;
        ServiceRegisterFn fn;
    };
    std::map<std::string, Entry> services_;
};

/// Register all built-in services (idempotent).
void register_builtin_services();

} // namespace calib
