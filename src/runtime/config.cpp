#include "config.hpp"

#include "../common/util.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

extern char** environ;

namespace calib {

RuntimeConfig RuntimeConfig::from_env(const char* prefix) {
    RuntimeConfig cfg;
    const std::string_view pfx(prefix);
    for (char** env = environ; *env; ++env) {
        const std::string_view entry(*env);
        if (!entry.starts_with(pfx))
            continue;
        const std::size_t eq = entry.find('=');
        if (eq == std::string_view::npos)
            continue;
        // CALI_SERVICES_ENABLE -> services.enable
        std::string key;
        for (char c : entry.substr(pfx.size(), eq - pfx.size()))
            key += c == '_' ? '.' : static_cast<char>(std::tolower(c));
        cfg.set(key, entry.substr(eq + 1));
    }
    return cfg;
}

RuntimeConfig RuntimeConfig::from_string(std::string_view text) {
    RuntimeConfig cfg;
    std::istringstream is{std::string(text)};
    std::string line;
    while (std::getline(is, line)) {
        const std::string_view t = util::trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        const std::size_t eq = t.find('=');
        if (eq == std::string_view::npos)
            throw std::runtime_error("config line missing '=': " + std::string(t));
        cfg.set(util::trim(t.substr(0, eq)), util::trim(t.substr(eq + 1)));
    }
    return cfg;
}

RuntimeConfig RuntimeConfig::from_file(const std::string& path) {
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open config file " + path);
    std::ostringstream buf;
    buf << is.rdbuf();
    return from_string(buf.str());
}

void RuntimeConfig::set(std::string_view key, std::string_view value) {
    values_[std::string(key)] = std::string(value);
}

std::string RuntimeConfig::get(std::string_view key, std::string_view fallback) const {
    auto it = values_.find(std::string(key));
    return it != values_.end() ? it->second : std::string(fallback);
}

std::optional<std::string> RuntimeConfig::find(std::string_view key) const {
    auto it = values_.find(std::string(key));
    return it != values_.end() ? std::optional(it->second) : std::nullopt;
}

long RuntimeConfig::get_int(std::string_view key, long fallback) const {
    auto v = find(key);
    if (!v)
        return fallback;
    try {
        return std::stol(*v);
    } catch (...) {
        return fallback;
    }
}

double RuntimeConfig::get_double(std::string_view key, double fallback) const {
    auto v = find(key);
    if (!v)
        return fallback;
    try {
        return std::stod(*v);
    } catch (...) {
        return fallback;
    }
}

bool RuntimeConfig::get_bool(std::string_view key, bool fallback) const {
    auto v = find(key);
    if (!v)
        return fallback;
    return *v == "1" || util::iequals(*v, "true") || util::iequals(*v, "yes") ||
           util::iequals(*v, "on");
}

bool RuntimeConfig::contains(std::string_view key) const {
    return values_.count(std::string(key)) > 0;
}

RuntimeConfig RuntimeConfig::merged_with(const RuntimeConfig& other) const {
    RuntimeConfig out = *this;
    for (const auto& [k, v] : other.values_)
        out.values_[k] = v;
    return out;
}

} // namespace calib
