// Source-code annotation API (paper §III-B, Listing 1).
//
//   calib::mark_begin("function", "foo");     // push region value
//   calib::mark_end("function", "foo");       // pop
//   calib::mark_set("iteration#mainloop", i); // set a value attribute
//
// or the RAII / object forms:
//
//   calib::Annotation kernel("kernel");
//   kernel.begin("advec-cell"); ...; kernel.end();
//   { calib::ScopeAnnotation s("region", "init"); ... }
//
// plus convenience macros CALIB_MARK_FUNCTION / CALIB_MARK_BEGIN / ...
#pragma once

#include "caliper.hpp"

#include "../common/attribute.hpp"
#include "../common/variant.hpp"

#include <string_view>

namespace calib {

/// Handle for one annotation attribute; creation resolves (or defines) the
/// attribute once, so repeated begin/end calls avoid name lookups.
class Annotation {
public:
    explicit Annotation(std::string_view name, std::uint32_t properties = prop::nested)
        : name_(intern(name)), properties_(properties) {}

    Annotation& begin(const Variant& value) {
        Caliper& c = Caliper::instance();
        resolve(c, value.type());
        c.begin(attr_, value);
        return *this;
    }

    Annotation& set(const Variant& value) {
        Caliper& c = Caliper::instance();
        resolve(c, value.type());
        c.set(attr_, value);
        return *this;
    }

    void end() {
        if (attr_.valid())
            Caliper::instance().end(attr_);
    }

    const Attribute& attribute() const noexcept { return attr_; }

    /// RAII region guard: ends the annotation at scope exit.
    class Guard {
    public:
        explicit Guard(Annotation& ann) : ann_(ann) {}
        ~Guard() { ann_.end(); }
        Guard(const Guard&)            = delete;
        Guard& operator=(const Guard&) = delete;

    private:
        Annotation& ann_;
    };

private:
    void resolve(Caliper& c, Variant::Type type) {
        if (!attr_.valid())
            attr_ = c.create_attribute(name_, type, properties_);
    }

    const char* name_;
    std::uint32_t properties_;
    Attribute attr_;
};

/// RAII scope annotation: begin on construction, end on destruction.
class ScopeAnnotation {
public:
    ScopeAnnotation(std::string_view attr, const Variant& value) : ann_(attr) {
        ann_.begin(value);
    }
    ~ScopeAnnotation() { ann_.end(); }
    ScopeAnnotation(const ScopeAnnotation&)            = delete;
    ScopeAnnotation& operator=(const ScopeAnnotation&) = delete;

private:
    Annotation ann_;
};

// -- free-function API (Listing 1 style) -------------------------------------

/// Push \a value onto the \a attr_name blackboard stack.
inline void mark_begin(std::string_view attr_name, const Variant& value) {
    Caliper& c = Caliper::instance();
    c.begin(c.create_attribute(attr_name, value.type(), prop::nested), value);
}

/// Pop the innermost value of \a attr_name. The \a value parameter is
/// accepted for symmetry with Listing 1 and checked in debug logs only.
inline void mark_end(std::string_view attr_name, const Variant& = Variant()) {
    Caliper& c  = Caliper::instance();
    Attribute a = c.find_attribute(attr_name);
    if (a.valid())
        c.end(a);
}

/// Overwrite the (single) value of a value-semantics attribute.
inline void mark_set(std::string_view attr_name, const Variant& value) {
    Caliper& c = Caliper::instance();
    c.set(c.create_attribute(attr_name, value.type(), prop::as_value), value);
}

} // namespace calib

#define CALIB_CONCAT_(a, b) a##b
#define CALIB_CONCAT(a, b) CALIB_CONCAT_(a, b)

/// Annotate the enclosing scope as region \a name under attribute "function".
#define CALIB_MARK_FUNCTION \
    ::calib::ScopeAnnotation CALIB_CONCAT(calib_scope_, __LINE__)("function", __func__)

#define CALIB_MARK_BEGIN(attr, value) ::calib::mark_begin((attr), (value))
#define CALIB_MARK_END(attr) ::calib::mark_end((attr))

/// Annotate the enclosing scope with attribute/value.
#define CALIB_SCOPE(attr, value) \
    ::calib::ScopeAnnotation CALIB_CONCAT(calib_scope_, __LINE__)((attr), (value))
