// Shared parsing of the aggregate service's runtime configuration
// (used by the service itself and by the online cross-process reduction).
#pragma once

#include "../config.hpp"

#include "../../aggregate/ops.hpp"
#include "../../common/recordmap.hpp"
#include "../../query/queryspec.hpp"

#include <functional>
#include <vector>

namespace calib {

/// Parse aggregate.query / aggregate.ops / aggregate.key from \a config
/// into an aggregation scheme; optional out-parameters receive the WHERE
/// filters and the preallocation hint.
AggregationConfig read_aggregate_config(const RuntimeConfig& config,
                                        std::vector<FilterSpec>* filters = nullptr,
                                        std::size_t* prealloc = nullptr);

class Caliper;
class Channel;

/// Merge *all* threads' aggregation databases of \a channel and flush the
/// combined result — cross-thread aggregation at runtime, which the paper
/// lists as requiring a post-processing step (§IV-B); here it is a single
/// in-memory merge. Only safe when the monitored threads are quiescent.
/// Returns the number of merged output records.
std::size_t flush_cross_thread(Caliper& c, Channel* channel,
                               const std::function<void(RecordMap&&)>& sink);

} // namespace calib
