// Event service: triggers a snapshot on every annotation event
// (begin/end of a region, set of a value attribute) — the paper's
// synchronous "event mode" snapshot trigger (§V-B).
//
// Snapshots fire *before* the blackboard update: a begin-snapshot captures
// the time spent in the enclosing state, an end-snapshot captures the time
// spent in the region being closed (which is still on the blackboard).
//
// Config:
//   event.enable_set   also trigger on set() updates (default true)
//   event.trigger      comma list of attribute labels; when present, only
//                      events on these attributes trigger snapshots
#include "../caliper.hpp"
#include "../channel.hpp"

#include "../../common/util.hpp"

#include <atomic>
#include <memory>
#include <string>
#include <vector>

namespace calib {

namespace {

/// Attribute whitelist with lazily resolved ids (names may be registered
/// after the channel is created). Shared across threads: resolution uses
/// atomics with idempotent stores, so no locks appear on the event path.
class TriggerList {
public:
    explicit TriggerList(const std::string& names) {
        for (std::string_view tok : util::split(names, ',')) {
            tok = util::trim(tok);
            if (!tok.empty())
                names_.emplace_back(tok);
        }
        ids_ = std::vector<std::atomic<id_t>>(names_.size());
        for (auto& id : ids_)
            id.store(invalid_id, std::memory_order_relaxed);
    }

    bool empty() const noexcept { return names_.empty(); }

    bool matches(Caliper& c, const Attribute& attr) {
        const std::size_t gen = c.registry().generation();
        if (gen != generation_.load(std::memory_order_acquire)) {
            for (std::size_t i = 0; i < names_.size(); ++i)
                if (ids_[i].load(std::memory_order_relaxed) == invalid_id) {
                    Attribute a = c.registry().find(names_[i]);
                    if (a.valid())
                        ids_[i].store(a.id(), std::memory_order_relaxed);
                }
            generation_.store(gen, std::memory_order_release);
        }
        for (const auto& id : ids_)
            if (id.load(std::memory_order_relaxed) == attr.id())
                return true;
        return false;
    }

private:
    std::vector<std::string> names_;
    std::vector<std::atomic<id_t>> ids_;
    std::atomic<std::size_t> generation_{static_cast<std::size_t>(-1)};
};

} // namespace

void register_event_service();

void register_event_service() {
    ServiceRegistry::instance().add(
        "event", /*priority=*/20, [](Caliper&, Channel& channel) {
            const bool on_set = channel.config().get_bool("event.enable_set", true);
            auto trigger_list = std::make_shared<TriggerList>(
                channel.config().get("event.trigger", ""));

            auto trigger = [trigger_list](Caliper& c, Channel& ch, ThreadData&,
                                          const Attribute& attr, const Variant&) {
                if (attr.is_hidden())
                    return;
                if (!trigger_list->empty() && !trigger_list->matches(c, attr))
                    return;
                c.push_snapshot(&ch);
            };

            channel.pre_begin_cbs.push_back(trigger);
            channel.pre_end_cbs.push_back(trigger);
            if (on_set)
                channel.pre_set_cbs.push_back(trigger);
        });
}

} // namespace calib
