// Trace service: stores every snapshot record verbatim in a per-thread
// buffer (the paper's "tracing" configuration, used as the aggregation
// baseline in §V-B). Flush converts the buffered snapshots to offline
// records.
//
// Config:
//   trace.reserve   snapshot capacity hint per thread (default 65536)
#include "../caliper.hpp"
#include "../channel.hpp"

namespace calib {

void register_trace_service();

void register_trace_service() {
    ServiceRegistry::instance().add(
        "trace", /*priority=*/40, [](Caliper&, Channel& channel) {
            const std::size_t reserve = static_cast<std::size_t>(
                channel.config().get_int("trace.reserve", 65536));

            auto ensure_state = [reserve](ThreadChannelState& state) {
                if (!state.trace) {
                    state.trace = std::make_unique<TraceBuffer>();
                    state.trace->reserve(reserve);
                }
            };

            // eager per-thread buffer setup on blackboard updates, so the
            // signal sampler appends into preallocated storage
            auto init_cb = [ensure_state](Caliper&, Channel& ch, ThreadData& td,
                                          const Attribute&, const Variant&) {
                ensure_state(td.channel_state(ch.id()));
            };
            channel.pre_begin_cbs.push_back(init_cb);
            channel.pre_set_cbs.push_back(init_cb);

            channel.process_cbs.push_back(
                [ensure_state](Caliper&, Channel&, ThreadData&,
                               ThreadChannelState& state, const SnapshotRecord& rec) {
                    ensure_state(state);
                    state.trace->append(rec);
                });

            channel.flush_cbs.push_back(
                [](Caliper& c, Channel&, ThreadData&, ThreadChannelState& state,
                   const Channel::FlushFn& sink) {
                    if (!state.trace)
                        return;
                    const AttributeRegistry& registry = c.registry();
                    for (std::size_t i = 0; i < state.trace->size(); ++i) {
                        auto [entries, n] = state.trace->get(i);
                        RecordMap out;
                        out.reserve(n);
                        for (std::size_t e = 0; e < n; ++e) {
                            const Attribute a = registry.get(entries[e].attribute);
                            if (a.valid())
                                out.append(a.name(), entries[e].value);
                        }
                        sink(std::move(out));
                    }
                });
        });
}

} // namespace calib
