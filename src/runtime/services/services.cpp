// Service registry and built-in service registration.
//
// Services are independent building blocks (paper §IV-A) registered by
// name with a priority that fixes their callback ordering on a channel:
// measurement providers (timer) run before trigger services (sampler,
// event), which run before processing services (aggregate, trace), which
// run before output services (recorder).
#include "../channel.hpp"
#include "../caliper.hpp"

#include "../../common/log.hpp"
#include "../../common/util.hpp"

#include <algorithm>
#include <mutex>

namespace calib {

ServiceRegistry& ServiceRegistry::instance() {
    static ServiceRegistry reg;
    return reg;
}

void ServiceRegistry::add(const std::string& name, int priority, ServiceRegisterFn fn) {
    services_[name] = Entry{priority, std::move(fn)};
}

void ServiceRegistry::instantiate(Caliper& c, Channel& channel,
                                  const std::string& names) {
    struct Pick {
        int priority;
        std::string name;
        const ServiceRegisterFn* fn;
    };
    std::vector<Pick> picks;

    for (std::string_view tok : util::split(names, ',')) {
        tok = util::trim(tok);
        if (tok.empty())
            continue;
        auto it = services_.find(std::string(tok));
        if (it == services_.end()) {
            log_warn() << "unknown service '" << tok << "' requested on channel '"
                       << channel.name() << "'";
            continue;
        }
        picks.push_back({it->second.priority, it->first, &it->second.fn});
    }

    std::sort(picks.begin(), picks.end(),
              [](const Pick& a, const Pick& b) { return a.priority < b.priority; });

    for (const Pick& p : picks) {
        (*p.fn)(c, channel);
        channel.services_.push_back(p.name);
        log_debug() << "registered service '" << p.name << "' on channel '"
                    << channel.name() << "'";
    }
}

std::vector<std::string> ServiceRegistry::available() const {
    std::vector<std::string> out;
    for (const auto& [name, entry] : services_)
        out.push_back(name);
    return out;
}

// defined in the individual service translation units
void register_timer_service();
void register_event_service();
void register_sampler_service();
void register_aggregate_service();
void register_trace_service();
void register_recorder_service();
void register_proxy_service();
void register_report_service();
void register_textlog_service();
void register_cycles_service();
void register_memusage_service();
void register_path_service();

void register_builtin_services() {
    static std::once_flag once;
    std::call_once(once, [] {
        register_timer_service();
        register_cycles_service();
        register_memusage_service();
        register_path_service();
        register_sampler_service();
        register_event_service();
        register_aggregate_service();
        register_trace_service();
        register_textlog_service();
        register_recorder_service();
        register_proxy_service();
        register_report_service();
    });
}

} // namespace calib
