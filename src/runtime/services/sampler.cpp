// Sampler service: time-based asynchronous snapshot triggering
// (the paper's "sampling mode", §V-B: snapshots every 10 ms; §VI-B:
// 100 Hz sampling).
//
// Two implementations:
//
//   cooperative (default) — deterministic quasi-sampling: every blackboard
//     update checks the elapsed time and emits one snapshot per elapsed
//     sampling period (catching up on long gaps). No signals involved, so
//     results are reproducible; granularity is bounded by the annotation
//     event rate.
//
//   signal — real asynchronous sampling: a sampler thread sends SIGPROF to
//     every registered thread each period; the handler captures and
//     processes a snapshot on the interrupted thread (the aggregation path
//     is allocation-free up to the preallocated DB capacity, paper §IV-B:
//     "Our implementation is async-signal safe"). Samples that interrupt a
//     blackboard update are dropped and counted.
//
// Config:
//   sampler.frequency  sampling frequency in Hz (default 100)
//   sampler.mode       "cooperative" or "signal" (default cooperative)
//   sampler.burst_cap  max catch-up snapshots per event (cooperative; 1024)
#include "../caliper.hpp"
#include "../channel.hpp"
#include "../clock.hpp"

#include "../../common/log.hpp"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <memory>
#include <thread>

namespace calib {

namespace {

void sampler_signal_handler(int) {
    const int saved_errno = errno;
    Caliper& c            = Caliper::instance();
    if (ThreadData* td = c.maybe_thread_data())
        c.push_snapshot_from_signal(*td);
    errno = saved_errno;
}

/// The signal-mode sampler thread. One instance per sampling channel.
class SignalSampler {
public:
    SignalSampler(std::uint64_t period_ns) : period_ns_(period_ns) {
        struct sigaction sa = {};
        sa.sa_handler       = sampler_signal_handler;
        sa.sa_flags         = SA_RESTART;
        sigemptyset(&sa.sa_mask);
        sigaction(SIGPROF, &sa, nullptr);
        thread_ = std::thread([this] { run(); });
    }

    ~SignalSampler() { stop(); }

    void stop() {
        bool expected = false;
        if (!stopped_.compare_exchange_strong(expected, true))
            return;
        if (thread_.joinable())
            thread_.join();
    }

private:
    void run() {
        const timespec period{
            static_cast<time_t>(period_ns_ / 1000000000ull),
            static_cast<long>(period_ns_ % 1000000000ull),
        };
        const pthread_t self = pthread_self();
        while (!stopped_.load(std::memory_order_relaxed)) {
            timespec remaining = period;
            nanosleep(&remaining, nullptr);
            Caliper::instance().visit_live_threads([self](ThreadData& td) {
                if (!pthread_equal(td.os_thread, self))
                    pthread_kill(td.os_thread, SIGPROF);
            });
        }
    }

    std::uint64_t period_ns_;
    std::atomic<bool> stopped_{false};
    std::thread thread_;
};

} // namespace

void register_sampler_service();

void register_sampler_service() {
    ServiceRegistry::instance().add(
        "sampler", /*priority=*/15, [](Caliper&, Channel& channel) {
            const double freq = channel.config().get_double("sampler.frequency", 100.0);
            const std::uint64_t period_ns =
                freq > 0 ? static_cast<std::uint64_t>(1e9 / freq) : 10000000ull;
            const std::string mode = channel.config().get("sampler.mode", "cooperative");

            if (mode == "signal") {
                auto sampler = std::make_shared<SignalSampler>(period_ns);
                channel.finish_cbs.push_back(
                    [sampler](Caliper&, Channel&) { sampler->stop(); });
                return;
            }

            // cooperative quasi-sampling, hooked on every blackboard update
            const std::uint64_t burst_cap = static_cast<std::uint64_t>(
                channel.config().get_int("sampler.burst_cap", 1024));

            auto poll = [period_ns, burst_cap](Caliper& c, Channel& ch, ThreadData& td,
                                               const Attribute&, const Variant&) {
                ThreadChannelState& state = td.channel_state(ch.id());
                const std::uint64_t ts    = now_ns();
                if (state.sampler_last_ns == 0) {
                    state.sampler_last_ns = ts;
                    return;
                }
                std::uint64_t due = (ts - state.sampler_last_ns) / period_ns;
                if (due == 0)
                    return;
                state.sampler_last_ns += due * period_ns;
                if (due > burst_cap)
                    due = burst_cap;
                for (std::uint64_t i = 0; i < due; ++i)
                    c.push_snapshot(&ch);
            };

            channel.pre_begin_cbs.push_back(poll);
            channel.pre_end_cbs.push_back(poll);
            channel.pre_set_cbs.push_back(poll);
        });
}

} // namespace calib
