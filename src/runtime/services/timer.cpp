// Timer service: contributes time measurement values to snapshots.
//
//   time.duration            microseconds since the previous snapshot on
//                            this thread. Summing time.duration grouped by
//                            region attributes yields *exclusive* time per
//                            region, because every begin/end event starts a
//                            new segment (paper §V-B, §VI).
//   time.inclusive.duration  on end events: microseconds since the matching
//                            begin (inclusive region time).
//   time.offset              microseconds since this thread's first snapshot
//                            (enabled with timer.offset=true; useful for
//                            traces).
#include "../caliper.hpp"
#include "../channel.hpp"
#include "../clock.hpp"

namespace calib {

namespace {

struct TimerAttributes {
    Attribute duration;
    Attribute inclusive;
    Attribute offset;
};

TimerAttributes create_timer_attributes(Caliper& c) {
    const std::uint32_t props = prop::as_value | prop::aggregatable | prop::skip_key;
    return TimerAttributes{
        c.create_attribute("time.duration", Variant::Type::Double, props),
        c.create_attribute("time.inclusive.duration", Variant::Type::Double, props),
        c.create_attribute("time.offset", Variant::Type::Double, props),
    };
}

} // namespace

void register_timer_service();

void register_timer_service() {
    ServiceRegistry::instance().add(
        "timer", /*priority=*/10, [](Caliper& c, Channel& channel) {
            const TimerAttributes attrs = create_timer_attributes(c);
            const bool with_offset      = channel.config().get_bool("timer.offset", false);

            channel.pre_begin_cbs.push_back(
                [id = channel.id()](Caliper&, Channel&, ThreadData& td,
                                    const Attribute& attr, const Variant&) {
                    if (attr.is_nested())
                        td.channel_state(id).timer.begin_stack.push_back(now_ns());
                });

            channel.pre_end_cbs.push_back(
                [id = channel.id()](Caliper&, Channel&, ThreadData& td,
                                    const Attribute& attr, const Variant&) {
                    if (!attr.is_nested())
                        return;
                    TimerState& t = td.channel_state(id).timer;
                    if (t.begin_stack.empty())
                        return;
                    t.pending_inclusive_ns   = now_ns() - t.begin_stack.back();
                    t.has_pending_inclusive  = true;
                    t.begin_stack.pop_back();
                });

            channel.snapshot_cbs.push_back(
                [attrs, with_offset](Caliper&, Channel&, ThreadData&,
                                     ThreadChannelState& state, SnapshotRecord& rec) {
                    TimerState& t          = state.timer;
                    const std::uint64_t ts = now_ns();
                    if (t.last_snapshot_ns == 0)
                        t.last_snapshot_ns = ts; // first snapshot: duration 0
                    rec.append(attrs.duration.id(),
                               Variant(ns_to_us(ts - t.last_snapshot_ns)));
                    if (with_offset) {
                        if (t.first_snapshot_ns == 0)
                            t.first_snapshot_ns = ts;
                        rec.append(attrs.offset.id(),
                                   Variant(ns_to_us(ts - t.first_snapshot_ns)));
                    }
                    t.last_snapshot_ns = ts;
                    if (t.has_pending_inclusive) {
                        rec.append(attrs.inclusive.id(),
                                   Variant(ns_to_us(t.pending_inclusive_ns)));
                        t.has_pending_inclusive = false;
                    }
                });
        });
}

} // namespace calib
