// Additional built-in services:
//
//   report   — at channel close, run a CalQL query over all threads'
//              buffered data and print the formatted result (Caliper's
//              runtime-report functionality; on-line analytical
//              aggregation, paper §II-C).
//              config: report.query, report.filename (stderr|stdout|path)
//
//   textlog  — print every snapshot as attr=value text (debugging aid).
//              config: textlog.filename (stderr|stdout|path)
//
//   cycles   — contribute a "cycles.duration" CPU-cycle counter delta to
//              every snapshot (TSC-based stand-in for the paper's hardware
//              performance counter access).
//
//   memusage — contribute "mem.highwater.kb" (peak RSS) to snapshots.
#include "../caliper.hpp"
#include "../channel.hpp"

#include "../../common/log.hpp"
#include "../../query/processor.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sys/resource.h>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace calib {

namespace {

std::uint64_t read_cycle_counter() {
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
#endif
}

/// Shared output stream for textlog/report: stderr, stdout, or a file.
class OutputStream {
public:
    explicit OutputStream(const std::string& target) {
        if (target.empty() || target == "stderr")
            os_ = &std::cerr;
        else if (target == "stdout")
            os_ = &std::cout;
        else {
            file_ = std::make_unique<std::ofstream>(target);
            if (*file_)
                os_ = file_.get();
            else {
                log_error() << "cannot open output file " << target;
                os_ = &std::cerr;
            }
        }
    }

    std::ostream& stream() { return *os_; }
    std::mutex& mutex() { return mutex_; }

private:
    std::ostream* os_;
    std::unique_ptr<std::ofstream> file_;
    std::mutex mutex_;
};

} // namespace

void register_report_service();
void register_textlog_service();
void register_cycles_service();
void register_memusage_service();

void register_report_service() {
    ServiceRegistry::instance().add(
        "report", /*priority=*/60, [](Caliper&, Channel& channel) {
            const std::string query = channel.config().get(
                "report.query",
                "AGGREGATE count,sum(time.duration) GROUP BY * "
                "ORDER BY sum#time.duration DESC");
            const std::string target = channel.config().get("report.filename",
                                                            "stderr");

            channel.finish_cbs.push_back([query, target](Caliper& c, Channel& ch) {
                try {
                    QueryProcessor proc(parse_calql(query));
                    c.flush_all(&ch, [&proc](RecordMap&& r) { proc.add(r); });
                    OutputStream out(target);
                    std::lock_guard<std::mutex> lock(out.mutex());
                    out.stream() << "== report: channel '" << ch.name() << "' ==\n";
                    proc.write(out.stream());
                    out.stream().flush();
                } catch (const std::exception& e) {
                    log_error() << "report service: " << e.what();
                }
            });
        });
}

void register_textlog_service() {
    ServiceRegistry::instance().add(
        "textlog", /*priority=*/45, [](Caliper&, Channel& channel) {
            auto out = std::make_shared<OutputStream>(
                channel.config().get("textlog.filename", "stderr"));

            channel.process_cbs.push_back(
                [out](Caliper& c, Channel&, ThreadData& td, ThreadChannelState&,
                      const SnapshotRecord& rec) {
                    std::string line = "calib[" + td.label + "]:";
                    for (const Entry& e : rec) {
                        const Attribute a = c.registry().get(e.attribute);
                        if (!a.valid() || a.is_hidden())
                            continue;
                        line += ' ';
                        line += a.name();
                        line += '=';
                        line += e.value.to_string();
                    }
                    std::lock_guard<std::mutex> lock(out->mutex());
                    out->stream() << line << '\n';
                });

            channel.finish_cbs.push_back([out](Caliper&, Channel&) {
                std::lock_guard<std::mutex> lock(out->mutex());
                out->stream().flush();
            });
        });
}

void register_cycles_service() {
    ServiceRegistry::instance().add(
        "cycles", /*priority=*/11, [](Caliper& c, Channel& channel) {
            const Attribute attr = c.create_attribute(
                "cycles.duration", Variant::Type::UInt,
                prop::as_value | prop::aggregatable | prop::skip_key);

            channel.snapshot_cbs.push_back(
                [attr](Caliper&, Channel&, ThreadData&, ThreadChannelState& state,
                       SnapshotRecord& rec) {
                    const std::uint64_t tsc = read_cycle_counter();
                    if (state.last_tsc == 0)
                        state.last_tsc = tsc;
                    rec.append(attr.id(),
                               Variant(static_cast<unsigned long long>(
                                   tsc - state.last_tsc)));
                    state.last_tsc = tsc;
                });
        });
}

void register_memusage_service() {
    ServiceRegistry::instance().add(
        "memusage", /*priority=*/12, [](Caliper& c, Channel& channel) {
            const Attribute attr = c.create_attribute(
                "mem.highwater.kb", Variant::Type::UInt,
                prop::as_value | prop::aggregatable | prop::skip_key);

            channel.snapshot_cbs.push_back(
                [attr](Caliper&, Channel&, ThreadData&, ThreadChannelState&,
                       SnapshotRecord& rec) {
                    rusage ru{};
                    getrusage(RUSAGE_SELF, &ru);
                    rec.append(attr.id(), Variant(static_cast<unsigned long long>(
                                              ru.ru_maxrss)));
                });
        });
}

} // namespace calib
