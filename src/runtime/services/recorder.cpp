// Recorder service: writes flushed records to a .cali stream file, one
// file per flushing thread (matching Caliper's per-process datasets,
// paper §IV-A).
//
// Config:
//   recorder.filename   output path; "%r" is replaced with the thread/rank
//                       label (default "calib-%r.cali")
//   recorder.directory  optional output directory prefix
#include "../caliper.hpp"
#include "../channel.hpp"

#include "../../common/log.hpp"
#include "../../io/caliwriter.hpp"

#include <fstream>

namespace calib {

namespace {

std::string make_filename(const RuntimeConfig& config, const std::string& label) {
    std::string pattern = config.get("recorder.filename", "calib-%r.cali");
    const std::string dir = config.get("recorder.directory", "");
    if (!dir.empty())
        pattern = dir + "/" + pattern;
    const std::size_t pos = pattern.find("%r");
    if (pos != std::string::npos)
        pattern.replace(pos, 2, label);
    return pattern;
}

} // namespace

void register_recorder_service();

void register_recorder_service() {
    ServiceRegistry::instance().add(
        "recorder", /*priority=*/50, [](Caliper&, Channel& channel) {
            channel.flush_sink_cbs.push_back(
                [](Caliper&, Channel& ch, ThreadData& td,
                   const std::vector<RecordMap>& records) {
                    const std::string path = make_filename(ch.config(), td.label);
                    std::ofstream os(path);
                    if (!os) {
                        log_error() << "recorder: cannot open " << path;
                        return;
                    }
                    CaliWriter writer(os);
                    writer.write_global("cali.channel", Variant(ch.name()));
                    writer.write_global("cali.thread", Variant(td.label));
                    for (const auto& [name, value] : ch.metadata)
                        writer.write_global(name, value);
                    for (const RecordMap& r : records)
                        writer.write_record(r);
                    log_debug() << "recorder: wrote " << writer.num_records()
                                << " records to " << path;
                });
        });
}

} // namespace calib
