// Proxy service: pushes flushed records to a running calib-proxyd daemon
// instead of (or in addition to) writing files — the streaming analogue
// of the recorder.
//
// Config:
//   proxy.address   daemon address (unix path or host:port;
//                   default "/tmp/calib-proxyd.sock")
//   proxy.channel   daemon channel to join (default: this channel's name)
//   proxy.globals   "false" to skip sending channel metadata as
//                   connection globals (default "true": cali.channel,
//                   cali.thread, and channel metadata are joined onto
//                   every pushed record, like recorder's dataset globals)
//
// A connection is opened per flush and closed afterwards; a daemon that
// is down costs one failed connect per flush (logged, never fatal).
#include "../caliper.hpp"
#include "../channel.hpp"

#include "../../common/log.hpp"
#include "../../net/client.hpp"

namespace calib {

void register_proxy_service();

void register_proxy_service() {
    ServiceRegistry::instance().add(
        "proxy", /*priority=*/51, [](Caliper&, Channel& channel) {
            channel.flush_sink_cbs.push_back(
                [](Caliper&, Channel& ch, ThreadData& td,
                   const std::vector<RecordMap>& records) {
                    net::ProxyClient::Options opts;
                    opts.address = ch.config().get("proxy.address",
                                                   "/tmp/calib-proxyd.sock");
                    opts.channel     = ch.config().get("proxy.channel", ch.name());
                    opts.client_name = "calib:" + td.label;
                    try {
                        net::ProxyClient client(opts);
                        if (ch.config().get("proxy.globals", "true") != "false") {
                            RecordMap globals;
                            globals.append("cali.channel", Variant(ch.name()));
                            globals.append("cali.thread", Variant(td.label));
                            for (const auto& [name, value] : ch.metadata)
                                globals.append(name, value);
                            client.set_globals(globals, /*join=*/true);
                        }
                        client.push(records);
                        client.close();
                        log_debug()
                            << "proxy: pushed " << records.size() << " records to "
                            << opts.address << " (channel " << opts.channel << ")";
                    } catch (const std::exception& e) {
                        log_error() << "proxy: " << e.what();
                    }
                });
        });
}

} // namespace calib
