// On-line event aggregation service (paper §IV-B, Figure 2).
//
// Maintains one AggregationDB per monitored thread (no locks on the
// snapshot path). The aggregation scheme is read from the channel's
// runtime-config profile:
//
//   aggregate.query   full CalQL text ("AGGREGATE ... GROUP BY ... WHERE ...")
//   aggregate.ops     operator list, e.g. "count,sum(time.duration)"
//   aggregate.key     comma list of key attributes, or "*"
//   aggregate.prealloc  preallocated entries per thread DB (default 1024)
//
// At flush, each thread's database is emitted as one output record per
// unique aggregation key.
#include "aggregate_config.hpp"

#include "../caliper.hpp"
#include "../channel.hpp"

#include "../../common/log.hpp"
#include "../../query/calql.hpp"

#include <memory>

namespace calib {

AggregationConfig read_aggregate_config(const RuntimeConfig& config,
                                        std::vector<FilterSpec>* filters,
                                        std::size_t* prealloc) {
    AggregationConfig aggregation;

    if (auto query = config.find("aggregate.query")) {
        try {
            QuerySpec spec = parse_calql(*query);
            aggregation    = spec.aggregation;
            if (filters)
                *filters = spec.filters;
        } catch (const CalQLError& e) {
            log_error() << "aggregate.query parse error: " << e.what();
        }
    } else {
        aggregation = AggregationConfig::parse(
            config.get("aggregate.ops", "count,sum(time.duration)"),
            config.get("aggregate.key", "*"));
    }
    if (aggregation.ops.empty())
        aggregation.ops.push_back(AggOpConfig{AggOp::Count, "", ""});

    if (prealloc)
        *prealloc =
            static_cast<std::size_t>(config.get_int("aggregate.prealloc", 1024));
    return aggregation;
}

std::size_t flush_cross_thread(Caliper& c, Channel* channel,
                               const std::function<void(RecordMap&&)>& sink) {
    if (!channel)
        return 0;
    AggregationDB merged(read_aggregate_config(channel->config()), &c.registry());
    for (ThreadData* td : c.threads()) {
        if (channel->id() >= td->channels.size())
            continue;
        if (const AggregationDB* db = td->channels[channel->id()].aggregation.get())
            merged.merge(*db);
    }
    merged.flush(sink);
    return merged.size();
}

namespace {

struct AggregateServiceConfig {
    AggregationConfig aggregation;
    std::vector<FilterSpec> filters;
    std::size_t prealloc = 1024;
};

std::shared_ptr<AggregateServiceConfig> read_config(const RuntimeConfig& config) {
    auto out         = std::make_shared<AggregateServiceConfig>();
    out->aggregation = read_aggregate_config(config, &out->filters, &out->prealloc);
    return out;
}

} // namespace

void register_aggregate_service();

void register_aggregate_service() {
    ServiceRegistry::instance().add(
        "aggregate", /*priority=*/30, [](Caliper&, Channel& channel) {
            auto cfg = read_config(channel.config());

            auto ensure_state = [cfg](Caliper& c, Channel& ch, ThreadData& td) {
                ThreadChannelState& state = td.channel_state(ch.id());
                if (!state.aggregation) {
                    state.aggregation = std::make_unique<AggregationDB>(
                        cfg->aggregation, &c.registry());
                    state.aggregation->reserve(cfg->prealloc);
                    if (!cfg->filters.empty())
                        state.aggregation_filter = std::make_unique<SnapshotFilter>(
                            cfg->filters, &c.registry());
                }
            };

            // Initialize per-thread state eagerly on blackboard updates, so
            // the asynchronous sampler's signal handler never has to
            // allocate (paper §IV-B: async-signal safety).
            auto init_cb = [ensure_state](Caliper& c, Channel& ch, ThreadData& td,
                                          const Attribute&, const Variant&) {
                ensure_state(c, ch, td);
            };
            channel.pre_begin_cbs.push_back(init_cb);
            channel.pre_set_cbs.push_back(init_cb);

            channel.process_cbs.push_back(
                [ensure_state](Caliper& c, Channel& ch, ThreadData& td,
                               ThreadChannelState& state, const SnapshotRecord& rec) {
                    if (!state.aggregation)
                        ensure_state(c, ch, td);
                    if (state.aggregation_filter &&
                        !state.aggregation_filter->matches(rec))
                        return;
                    state.aggregation->process(rec);
                });

            channel.flush_cbs.push_back(
                [](Caliper&, Channel&, ThreadData&, ThreadChannelState& state,
                   const Channel::FlushFn& sink) {
                    if (state.aggregation)
                        state.aggregation->flush(
                            [&sink](RecordMap&& r) { sink(std::move(r)); });
                });
        });
}

} // namespace calib
