// Path service: exports the *full nesting stack* of selected attributes as
// a '/'-joined path attribute — the classic per-thread call-path profile
// dimension of traditional profilers (paper §VII), expressed as just
// another key:value attribute in our model.
//
// For an attribute "function" with stack [main, solve, kernel], every
// snapshot gains "function.path" = "main/solve/kernel". Grouping by the
// path attribute yields a call-path profile; FORMAT tree renders it.
//
// Config:
//   path.attributes   comma list of nested attributes to export
//                     (default "function")
#include "../caliper.hpp"
#include "../channel.hpp"

#include "../../common/util.hpp"

#include <memory>
#include <string>
#include <vector>

namespace calib {

namespace {

struct PathExport {
    std::string source;  ///< nested attribute to fold
    Attribute source_attr;
    Attribute path_attr; ///< "<source>.path"
};

} // namespace

void register_path_service();

void register_path_service() {
    ServiceRegistry::instance().add(
        "path", /*priority=*/14, [](Caliper& c, Channel& channel) {
            auto exports = std::make_shared<std::vector<PathExport>>();
            // keep the config string alive: split() returns views into it
            const std::string attr_list =
                channel.config().get("path.attributes", "function");
            for (std::string_view tok : util::split(attr_list, ',')) {
                tok = util::trim(tok);
                if (tok.empty())
                    continue;
                PathExport e;
                e.source    = std::string(tok);
                e.path_attr = c.create_attribute(e.source + ".path",
                                                 Variant::Type::String,
                                                 prop::as_value);
                exports->push_back(std::move(e));
            }

            // resolve sources that already exist; late-created attributes
            // are looked up per snapshot (the shared export table must not
            // be mutated from the per-thread snapshot path)
            for (PathExport& e : *exports)
                e.source_attr = c.registry().find(e.source);

            channel.snapshot_cbs.push_back(
                [exports](Caliper& c, Channel&, ThreadData& td, ThreadChannelState&,
                          SnapshotRecord& rec) {
                    for (const PathExport& e : *exports) {
                        const Attribute src = e.source_attr.valid()
                                                  ? e.source_attr
                                                  : c.registry().find(e.source);
                        if (!src.valid() || src.id() >= td.blackboard.size())
                            continue;
                        const auto& stack = td.blackboard[src.id()];
                        if (stack.empty())
                            continue;
                        std::string path;
                        for (const Variant& v : stack) {
                            if (!path.empty())
                                path += '/';
                            path += v.to_string();
                        }
                        rec.append(e.path_attr.id(), Variant(path));
                    }
                });
        });
}

} // namespace calib
