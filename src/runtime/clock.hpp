// Monotonic clock helper. clock_gettime(CLOCK_MONOTONIC) is
// async-signal-safe, so this may be called from the sampling handler.
#pragma once

#include <cstdint>
#include <ctime>

namespace calib {

inline std::uint64_t now_ns() noexcept {
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

inline double ns_to_us(std::uint64_t ns) noexcept {
    return static_cast<double>(ns) * 1e-3;
}

} // namespace calib
