#include "caliper.hpp"

#include "../common/log.hpp"
#include "../obs/metrics.hpp"
#include "../obs/report.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace calib {

namespace {

obs::Counter runtime_updates("runtime.updates");
obs::Counter runtime_snapshots("runtime.snapshots");
obs::Histogram runtime_snapshot_ns("runtime.snapshot_ns");

/// Thread-local handle; the ThreadData itself is owned by the runtime so
/// it outlives the thread (its buffered data may be flushed later).
struct ThreadHandle {
    ThreadData* data = nullptr;
    ~ThreadHandle();
};

thread_local ThreadHandle t_handle;

std::atomic<bool> g_runtime_alive{false};

ThreadHandle::~ThreadHandle() {
    if (data && g_runtime_alive.load(std::memory_order_acquire)) {
        // mark the thread gone under the list lock so the sampler never
        // signals an exited thread
        std::lock_guard<std::mutex> lock(Caliper::instance().thread_list_mutex());
        data->index = -data->index - 2; // negative = exited
    }
    data = nullptr;
}

} // namespace

Caliper::Caliper() {
    obs::init_from_env(); // CALIB_METRICS=1 turns on runtime self-profiling
    register_builtin_services();
    active_ = std::make_shared<const std::vector<Channel*>>();
    g_runtime_alive.store(true, std::memory_order_release);
}

Caliper& Caliper::instance() {
    static Caliper c;
    return c;
}

// ---------------------------------------------------------------------------
// channels

Channel* Caliper::create_channel(const std::string& name, const RuntimeConfig& config) {
    std::lock_guard<std::mutex> lock(channel_mutex_);
    auto channel = std::make_unique<Channel>(channels_.size(), name, config);
    Channel* ptr = channel.get();
    channels_.push_back(std::move(channel));

    ServiceRegistry::instance().instantiate(*this, *ptr,
                                            config.get("services.enable", ""));

    auto active = std::make_shared<std::vector<Channel*>>();
    for (const auto& ch : channels_)
        if (ch->active())
            active->push_back(ch.get());
    std::atomic_store(&active_, std::shared_ptr<const std::vector<Channel*>>(active));
    channel_epoch_.fetch_add(1, std::memory_order_release);
    return ptr;
}

void Caliper::close_channel(Channel* channel) {
    if (!channel)
        return;
    for (const auto& cb : channel->finish_cbs)
        cb(*this, *channel);

    if (obs::enabled()) {
        // self-profile report for the online runtime (CALIB_METRICS=1):
        // table on stderr, optionally JSON to CALIB_METRICS_JSON=<file>
        std::fprintf(stderr, "calib: channel '%s' self-profile:\n",
                     channel->name().c_str());
        obs::write_stats_table(stderr);
        if (const char* path = std::getenv("CALIB_METRICS_JSON"))
            obs::write_stats_json_file(path);
    }

    std::lock_guard<std::mutex> lock(channel_mutex_);
    channel->set_active(false);
    auto active = std::make_shared<std::vector<Channel*>>();
    for (const auto& ch : channels_)
        if (ch->active())
            active->push_back(ch.get());
    std::atomic_store(&active_, std::shared_ptr<const std::vector<Channel*>>(active));
    channel_epoch_.fetch_add(1, std::memory_order_release);
}

Channel* Caliper::find_channel(const std::string& name) {
    std::lock_guard<std::mutex> lock(channel_mutex_);
    for (const auto& ch : channels_)
        if (ch->name() == name)
            return ch.get();
    return nullptr;
}

std::shared_ptr<const std::vector<Channel*>> Caliper::active_channels() const {
    return std::atomic_load(&active_);
}

// ---------------------------------------------------------------------------
// threads

ThreadData& Caliper::register_thread() {
    auto td       = std::make_unique<ThreadData>();
    td->os_thread = pthread_self();
    ThreadData* p = td.get();

    std::lock_guard<std::mutex> lock(thread_mutex_);
    p->index = static_cast<int>(threads_.size());
    p->label = std::to_string(p->index);
    threads_.push_back(std::move(td));
    return *p;
}

ThreadData& Caliper::thread_data() {
    if (!t_handle.data)
        t_handle.data = &register_thread();
    return *t_handle.data;
}

ThreadData* Caliper::maybe_thread_data() noexcept {
    return t_handle.data;
}

void Caliper::set_thread_label(const std::string& label) {
    thread_data().label = label;
}

void Caliper::visit_live_threads(const std::function<void(ThreadData&)>& fn) {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    for (const auto& td : threads_)
        if (td->index >= 0)
            fn(*td);
}

std::vector<ThreadData*> Caliper::threads() {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    std::vector<ThreadData*> out;
    out.reserve(threads_.size());
    for (const auto& td : threads_)
        out.push_back(td.get());
    return out;
}

const std::vector<Channel*>& Caliper::channels_for(ThreadData& td) {
    const std::uint64_t epoch = channel_epoch_.load(std::memory_order_acquire);
    if (td.cached_channel_epoch != epoch) {
        td.cached_channels      = *active_channels();
        td.cached_channel_epoch = epoch;
    }
    return td.cached_channels;
}

// ---------------------------------------------------------------------------
// blackboard updates

void Caliper::begin(const Attribute& attr, const Variant& value) {
    runtime_updates.add();
    ThreadData& td = thread_data();
    td.in_update   = 1;
    for (Channel* ch : channels_for(td))
        for (const auto& cb : ch->pre_begin_cbs)
            cb(*this, *ch, td, attr, value);
    td.stack_for(attr.id()).push_back(value);
    td.in_update = 0;
}

void Caliper::end(const Attribute& attr) {
    runtime_updates.add();
    ThreadData& td = thread_data();
    auto& stack    = td.stack_for(attr.id());
    if (stack.empty()) {
        log_warn() << "end(" << attr.name_view() << ") without matching begin";
        return;
    }
    td.in_update = 1;
    for (Channel* ch : channels_for(td))
        for (const auto& cb : ch->pre_end_cbs)
            cb(*this, *ch, td, attr, stack.back());
    stack.pop_back();
    td.in_update = 0;
}

void Caliper::set(const Attribute& attr, const Variant& value) {
    runtime_updates.add();
    ThreadData& td = thread_data();
    td.in_update   = 1;
    for (Channel* ch : channels_for(td))
        for (const auto& cb : ch->pre_set_cbs)
            cb(*this, *ch, td, attr, value);
    auto& stack = td.stack_for(attr.id());
    if (stack.empty())
        stack.push_back(value);
    else
        stack.back() = value;
    td.in_update = 0;
}

Variant Caliper::current(const Attribute& attr) {
    ThreadData& td = thread_data();
    if (attr.id() >= td.blackboard.size())
        return {};
    const auto& stack = td.blackboard[attr.id()];
    return stack.empty() ? Variant() : stack.back();
}

std::size_t Caliper::depth(const Attribute& attr) {
    ThreadData& td = thread_data();
    if (attr.id() >= td.blackboard.size())
        return 0;
    return td.blackboard[attr.id()].size();
}

// ---------------------------------------------------------------------------
// snapshots

void Caliper::capture_blackboard(ThreadData& td, SnapshotRecord& rec) {
    for (id_t attr = 0; attr < td.blackboard.size(); ++attr) {
        const auto& stack = td.blackboard[attr];
        if (!stack.empty())
            rec.append(attr, stack.back());
    }
}

void Caliper::pull_snapshot(SnapshotRecord& out) {
    capture_blackboard(thread_data(), out);
}

void Caliper::process_snapshot(Channel* channel, ThreadData& td,
                               ThreadChannelState& state, SnapshotRecord& rec,
                               bool from_signal) {
    (void)from_signal;
    // relaxed-atomic instruments only: this runs in signal context too
    const std::uint64_t t0 = obs::enabled() ? obs::now_ns() : 0;
    for (const auto& cb : channel->snapshot_cbs)
        cb(*this, *channel, td, state, rec);
    capture_blackboard(td, rec);
    for (const auto& cb : channel->process_cbs)
        cb(*this, *channel, td, state, rec);
    ++state.num_snapshots;
    runtime_snapshots.add();
    if (t0)
        runtime_snapshot_ns.record(obs::now_ns() - t0);
}

void Caliper::push_snapshot(Channel* channel, const SnapshotRecord* trigger) {
    ThreadData& td = thread_data();
    if (channel) {
        SnapshotRecord rec;
        if (trigger)
            for (const Entry& e : *trigger)
                rec.append(e);
        process_snapshot(channel, td, td.channel_state(channel->id()), rec, false);
        return;
    }
    for (Channel* ch : channels_for(td)) {
        SnapshotRecord rec;
        if (trigger)
            for (const Entry& e : *trigger)
                rec.append(e);
        process_snapshot(ch, td, td.channel_state(ch->id()), rec, false);
    }
}

void Caliper::push_snapshot_from_signal(ThreadData& td) {
    if (td.in_update) {
        ++td.dropped_samples;
        return;
    }
    // use the thread's cached channel list verbatim: refreshing it could
    // allocate, which is not allowed in signal context
    for (Channel* ch : td.cached_channels) {
        if (!ch->active() || ch->id() >= td.channels.size())
            continue; // state not initialized on this thread yet
        SnapshotRecord rec;
        process_snapshot(ch, td, td.channels[ch->id()], rec, true);
    }
}

// ---------------------------------------------------------------------------
// flushing

void Caliper::flush_thread(Channel* channel, const Channel::FlushFn& sink) {
    if (!channel)
        return;
    ThreadData& td            = thread_data();
    ThreadChannelState& state = td.channel_state(channel->id());
    for (const auto& cb : channel->flush_cbs)
        cb(*this, *channel, td, state, sink);
}

void Caliper::flush_thread(Channel* channel) {
    if (!channel)
        return;
    std::vector<RecordMap> records;
    flush_thread(channel, [&records](RecordMap&& r) { records.push_back(std::move(r)); });
    ThreadData& td = thread_data();
    for (const auto& cb : channel->flush_sink_cbs)
        cb(*this, *channel, td, records);
    td.channel_state(channel->id()).flushed = true;
}

void Caliper::release_thread_states(Channel* channel) {
    if (!channel)
        return;
    std::lock_guard<std::mutex> lock(thread_mutex_);
    for (const auto& td : threads_)
        if (channel->id() < td->channels.size())
            td->channels[channel->id()] = ThreadChannelState{};
}

void Caliper::flush_all(Channel* channel, const Channel::FlushFn& sink) {
    if (!channel)
        return;
    for (ThreadData* td : threads()) {
        if (channel->id() >= td->channels.size())
            continue;
        for (const auto& cb : channel->flush_cbs)
            cb(*this, *channel, *td, td->channels[channel->id()], sink);
    }
}

} // namespace calib
