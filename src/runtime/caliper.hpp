// The Caliper runtime core (paper §IV-A).
//
// Caliper maintains the attribute dictionary, the per-thread blackboard
// buffers, and the active measurement channels. Instrumentation updates
// attributes on the blackboard (begin/end/set); at any time a *snapshot*
// captures the current blackboard contents plus measurement values into a
// SnapshotRecord, which is handed to the processing services (aggregation
// or tracing) of each active channel.
//
// Thread model: all snapshot processing happens on the thread that
// triggered the snapshot; per-thread service state avoids locking on the
// hot path. Cross-thread and cross-process aggregation is a
// post-processing step (paper §IV-B).
#pragma once

#include "channel.hpp"
#include "config.hpp"
#include "threadstate.hpp"

#include "../common/attribute.hpp"
#include "../common/snapshot.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace calib {

class Caliper {
public:
    /// Process-global runtime instance.
    static Caliper& instance();

    Caliper(const Caliper&)            = delete;
    Caliper& operator=(const Caliper&) = delete;

    // -- attributes ----------------------------------------------------------
    AttributeRegistry& registry() noexcept { return registry_; }

    Attribute create_attribute(std::string_view name, Variant::Type type,
                               std::uint32_t properties = prop::nested) {
        return registry_.create(name, type, properties);
    }
    Attribute find_attribute(std::string_view name) const {
        return registry_.find(name);
    }

    // -- channels ------------------------------------------------------------
    /// Create a channel and instantiate the services its profile enables.
    Channel* create_channel(const std::string& name, const RuntimeConfig& config);

    /// Flush-and-finish a channel: runs finish callbacks and deactivates it.
    void close_channel(Channel* channel);

    Channel* find_channel(const std::string& name);

    /// Snapshot of active channels (safe to iterate without locks).
    std::shared_ptr<const std::vector<Channel*>> active_channels() const;

    // -- blackboard updates (the instrumentation hot path) --------------------
    void begin(const Attribute& attr, const Variant& value);
    void end(const Attribute& attr);
    void set(const Attribute& attr, const Variant& value);

    /// Innermost value of \a attr on this thread's blackboard.
    Variant current(const Attribute& attr);

    /// Current nesting depth of \a attr on this thread's blackboard.
    std::size_t depth(const Attribute& attr);

    // -- snapshots -------------------------------------------------------------
    /// Trigger a snapshot on \a channel (or all active channels when null).
    /// \a trigger entries are prepended to the record.
    void push_snapshot(Channel* channel = nullptr,
                       const SnapshotRecord* trigger = nullptr);

    /// Build (but do not process) a snapshot of the calling thread's
    /// blackboard; used by tests and by services needing raw captures.
    void pull_snapshot(SnapshotRecord& out);

    /// Signal-context snapshot entry point used by the sampling service:
    /// no allocation guarantees beyond preallocated service buffers, and
    /// drops the sample when the thread is mid-update.
    void push_snapshot_from_signal(ThreadData& td);

    // -- flushing --------------------------------------------------------------
    /// Flush the calling thread's buffered data on \a channel into \a sink.
    void flush_thread(Channel* channel, const Channel::FlushFn& sink);

    /// Flush the calling thread's data into the channel's flush sinks
    /// (e.g. the recorder service writing a per-process file).
    void flush_thread(Channel* channel);

    /// Flush *all* registered threads into \a sink. Only safe when the
    /// monitored threads are quiescent (e.g. after joining them).
    void flush_all(Channel* channel, const Channel::FlushFn& sink);

    /// Drop every thread's buffered service state (aggregation DBs, trace
    /// buffers) for \a channel. Only safe when the monitored threads are
    /// quiescent; used by benchmarks that run many configurations in one
    /// process.
    void release_thread_states(Channel* channel);

    // -- thread management -------------------------------------------------------
    ThreadData& thread_data();

    /// Thread data if this thread is already registered; never allocates
    /// (safe to call from the sampling signal handler).
    ThreadData* maybe_thread_data() noexcept;

    /// Set the calling thread's label (substituted for %r in recorder
    /// filenames; simmpi sets this to the rank).
    void set_thread_label(const std::string& label);

    /// All thread states registered so far (includes exited threads).
    std::vector<ThreadData*> threads();

    /// Visit live (non-exited) threads while holding the thread-list lock;
    /// used by the signal sampler so threads cannot exit mid-signal.
    void visit_live_threads(const std::function<void(ThreadData&)>& fn);

    /// Mutex guarding the thread list; the sampling service holds it while
    /// signalling so threads cannot fully exit mid-signal.
    std::mutex& thread_list_mutex() { return thread_mutex_; }

private:
    Caliper();

    void process_snapshot(Channel* channel, ThreadData& td, ThreadChannelState& state,
                          SnapshotRecord& rec, bool from_signal);
    void capture_blackboard(ThreadData& td, SnapshotRecord& rec);
    ThreadData& register_thread();

    /// Hot-path channel list: per-thread cache refreshed on epoch change.
    const std::vector<Channel*>& channels_for(ThreadData& td);

    AttributeRegistry registry_;

    mutable std::mutex channel_mutex_;
    std::vector<std::unique_ptr<Channel>> channels_;
    std::shared_ptr<const std::vector<Channel*>> active_; // published snapshot
    std::atomic<std::uint64_t> channel_epoch_{0};         // bumps on every change

    std::mutex thread_mutex_;
    std::vector<std::unique_ptr<ThreadData>> threads_;
};

} // namespace calib
