// Per-thread runtime state: the blackboard buffer (paper §IV-A) and the
// per-thread, per-channel service state (aggregation DB, trace buffer,
// timer stacks — paper §IV-B: "We maintain a separate aggregation database
// for each monitored thread ... this design avoids the use of thread
// locks").
#pragma once

#include "../aggregate/aggregation_db.hpp"
#include "../query/filter.hpp"
#include "../common/snapshot.hpp"
#include "../common/types.hpp"
#include "../common/variant.hpp"

#include <csignal>
#include <cstdint>
#include <memory>
#include <pthread.h>
#include <string>
#include <vector>

namespace calib {

/// Compact storage for trace-mode snapshot copies: a shared entry arena
/// plus (offset, length) index per snapshot. Reserve() makes appends
/// allocation-free up to the reserved capacity (needed in signal context).
class TraceBuffer {
public:
    void reserve(std::size_t snapshots, std::size_t avg_entries = 8) {
        index_.reserve(snapshots);
        arena_.reserve(snapshots * avg_entries);
    }

    /// Append a snapshot; drops (and counts) once reserved capacity would
    /// be exceeded in signal-unsafe ways only if allocation fails — the
    /// vector grows normally outside signal context.
    void append(const SnapshotRecord& rec) {
        const std::uint32_t offset = static_cast<std::uint32_t>(arena_.size());
        for (const Entry& e : rec)
            arena_.push_back(e);
        index_.emplace_back(offset, static_cast<std::uint32_t>(rec.size()));
    }

    std::size_t size() const noexcept { return index_.size(); }

    /// Visit snapshot \a i as an entry span.
    std::pair<const Entry*, std::size_t> get(std::size_t i) const noexcept {
        return {arena_.data() + index_[i].first, index_[i].second};
    }

    std::size_t bytes() const noexcept {
        return arena_.capacity() * sizeof(Entry) +
               index_.capacity() * sizeof(index_[0]);
    }

    void clear() {
        arena_.clear();
        index_.clear();
    }

private:
    std::vector<Entry> arena_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> index_;
};

struct TimerState {
    std::uint64_t last_snapshot_ns = 0;
    std::uint64_t first_snapshot_ns = 0;
    std::uint64_t pending_inclusive_ns = 0; ///< set by pre_end, consumed at snapshot
    bool has_pending_inclusive = false;
    std::vector<std::uint64_t> begin_stack; ///< begin timestamps of nested regions
};

/// Per-(thread, channel) service state.
struct ThreadChannelState {
    std::unique_ptr<AggregationDB> aggregation;
    std::unique_ptr<SnapshotFilter> aggregation_filter;
    std::unique_ptr<TraceBuffer> trace;
    TimerState timer;
    std::uint64_t sampler_last_ns = 0;
    std::uint64_t last_tsc        = 0; ///< cycles service
    std::uint64_t num_snapshots   = 0;
    bool flushed                  = false;
};

/// Everything the runtime keeps per thread.
struct ThreadData {
    /// Blackboard: one value stack per attribute id. as_value attributes
    /// use a stack of depth one (set overwrites the top).
    std::vector<std::vector<Variant>> blackboard;

    /// Per-channel service state, indexed by channel id.
    std::vector<ThreadChannelState> channels;

    /// Non-zero while the thread mutates runtime structures; the sampling
    /// signal handler drops the sample when set (same-thread flag, hence
    /// sig_atomic_t is sufficient).
    volatile sig_atomic_t in_update = 0;

    /// Samples dropped because they interrupted an update.
    std::uint64_t dropped_samples = 0;

    /// Label used to substitute %r in recorder filenames (set from the
    /// simmpi rank, or the thread registration index by default).
    std::string label;

    pthread_t os_thread{};
    int index = -1; ///< registration index in the runtime's thread list

    /// Cached active-channel list (avoids shared_ptr atomics on the
    /// instrumentation hot path); refreshed when the epoch changes.
    std::vector<class Channel*> cached_channels;
    std::uint64_t cached_channel_epoch = ~0ull;

    std::vector<Variant>& stack_for(id_t attr) {
        if (attr >= blackboard.size())
            blackboard.resize(attr + 1);
        return blackboard[attr];
    }

    ThreadChannelState& channel_state(std::size_t channel_id) {
        if (channel_id >= channels.size())
            channels.resize(channel_id + 1);
        return channels[channel_id];
    }
};

} // namespace calib
